// Package baselines implements the prior DRAM-based TRNG proposals the paper
// compares against in Table 2:
//
//   - Pyo+ (2009): randomness harvested from non-determinism in DRAM command
//     scheduling under refresh contention.
//   - Keller+ (2014) and Sutar+ (2018): randomness harvested from DRAM data
//     retention failures after disabling refresh for tens of seconds.
//   - Tehranipoor+ (2016) / Eckert+ (2017): randomness harvested from DRAM
//     startup values after a power cycle.
//
// Each baseline produces bits against the same simulated DRAM substrate and
// reports the latency, energy and peak-throughput figures used in Table 2.
package baselines

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/timing"
)

// Metrics summarises one TRNG design for the Table 2 comparison.
type Metrics struct {
	Name string
	Year int
	// EntropySource describes where the randomness comes from.
	EntropySource string
	// TrueRandom reports whether the entropy source is fundamentally
	// non-deterministic (the paper argues command scheduling is not).
	TrueRandom bool
	// StreamingCapable reports whether the design sustains continuous
	// operation without a power cycle.
	StreamingCapable bool
	// Latency64NS is the time to produce a 64-bit random value, in
	// nanoseconds.
	Latency64NS float64
	// EnergyPerBitNJ is the marginal energy per random bit, in nanojoules.
	EnergyPerBitNJ float64
	// PeakThroughputMbps is the peak random-number throughput in Mb/s.
	PeakThroughputMbps float64
}

// CommandScheduleTRNG models Pyo et al.: one byte of "random" data harvested
// every HarvestCycles processor cycles from access-latency jitter caused by
// refresh contention.
type CommandScheduleTRNG struct {
	// CPUFrequencyGHz is the processor frequency the harvesting loop runs
	// at (the paper scales the original work to a 5 GHz part).
	CPUFrequencyGHz float64
	// HarvestCycles is the number of CPU cycles needed to harvest one byte
	// (45000 in the original work).
	HarvestCycles float64
	// Channels is the number of DRAM channels harvested in parallel (the
	// paper gives the benefit of the doubt with 4).
	Channels int
}

// NewCommandScheduleTRNG returns the configuration the paper uses when
// scaling Pyo et al. to a modern system: a 5 GHz CPU, 45000 cycles per byte,
// 4 DRAM channels.
func NewCommandScheduleTRNG() CommandScheduleTRNG {
	return CommandScheduleTRNG{CPUFrequencyGHz: 5.0, HarvestCycles: 45000, Channels: 4}
}

// Metrics returns the Table 2 row for the command-scheduling TRNG.
func (c CommandScheduleTRNG) Metrics() (Metrics, error) {
	if c.CPUFrequencyGHz <= 0 || c.HarvestCycles <= 0 || c.Channels <= 0 {
		return Metrics{}, fmt.Errorf("baselines: command-schedule TRNG misconfigured: %+v", c)
	}
	nsPerByte := c.HarvestCycles / c.CPUFrequencyGHz
	throughputMbps := 8.0 / nsPerByte * 1000 * float64(c.Channels)
	latency64 := nsPerByte * 8 / float64(c.Channels)
	return Metrics{
		Name:               "Pyo+ (command schedule)",
		Year:               2009,
		EntropySource:      "DRAM command scheduling",
		TrueRandom:         false,
		StreamingCapable:   true,
		Latency64NS:        latency64,
		EnergyPerBitNJ:     0, // system-dependent; the paper does not compare it
		PeakThroughputMbps: throughputMbps,
	}, nil
}

// Harvest returns n pseudo-random bits from scheduling jitter. The output is
// deliberately modelled as a deterministic function of system state (the
// memory-access interleaving), which is why the paper classifies this design
// as not fully non-deterministic.
func (c CommandScheduleTRNG) Harvest(dev device.Device, n int) ([]byte, error) {
	// One harvest observes at most one access per DRAM cell's worth of
	// schedule slots; bound the request before allocating caller-controlled
	// amounts of memory.
	if err := checkHarvestSize(dev, n, func(g dram.Geometry) int { return g.CellsPerDevice() }, "schedule slots"); err != nil {
		return nil, err
	}
	// Access latencies alternate deterministically with refresh position;
	// harvest the LSB of a synthetic latency counter.
	bits := make([]byte, n)
	state := dev.Serial()*2654435761 + 12345
	for i := range bits {
		// The latency pattern repeats with the refresh period; an adversary
		// observing the schedule can reproduce it.
		state = state*6364136223846793005 + 1442695040888963407
		bits[i] = byte((state >> 17) & 1)
	}
	return bits, nil
}

// RetentionTRNG models Keller+/Sutar+: disable refresh over a DRAM block,
// wait tens of seconds for retention failures to accumulate, read the block
// and hash it down to a short true-random string.
type RetentionTRNG struct {
	// WaitSeconds is the refresh-disabled wait (40 s in Sutar+).
	WaitSeconds float64
	// BlockBytes is the size of the DRAM block that is read and hashed
	// (4 MiB in Sutar+).
	BlockBytes int
	// OutputBits is the number of random bits extracted per wait period
	// (256 in Sutar+).
	OutputBits int
}

// NewRetentionTRNG returns the Sutar+ configuration used in Table 2.
func NewRetentionTRNG() RetentionTRNG {
	return RetentionTRNG{WaitSeconds: 40, BlockBytes: 4 << 20, OutputBits: 256}
}

// Metrics returns the Table 2 row for the retention-failure TRNG, using the
// supplied power model for the energy estimate.
func (r RetentionTRNG) Metrics(p timing.Params, m power.Model) (Metrics, error) {
	if r.WaitSeconds <= 0 || r.BlockBytes <= 0 || r.OutputBits <= 0 {
		return Metrics{}, fmt.Errorf("baselines: retention TRNG misconfigured: %+v", r)
	}
	waitNS := r.WaitSeconds * 1e9
	// Energy: the device sits in precharge standby for the whole wait.
	idleNJ := m.IdleEnergyNJ(p, p.Cycles(waitNS))
	energyPerBit := idleNJ / float64(r.OutputBits)
	throughputMbps := float64(r.OutputBits) / waitNS * 1000
	return Metrics{
		Name:               "Sutar+ (data retention)",
		Year:               2018,
		EntropySource:      "DRAM data retention failures",
		TrueRandom:         true,
		StreamingCapable:   true,
		Latency64NS:        waitNS,
		EnergyPerBitNJ:     energyPerBit,
		PeakThroughputMbps: throughputMbps,
	}, nil
}

// Harvest models one retention round: it perturbs a block of the device's
// stored data with retention-style failures derived from cell variation and
// the device noise source, then hashes the block to OutputBits bits.
func (r RetentionTRNG) Harvest(dev device.Device, noise dram.NoiseSource) ([]byte, error) {
	if dev == nil {
		return nil, fmt.Errorf("baselines: nil device")
	}
	if noise == nil {
		noise = dram.NewPhysicalNoise()
	}
	g := dev.Geometry()
	rowBytes := g.ColsPerRow / 8
	rowsNeeded := r.BlockBytes / rowBytes
	if rowsNeeded < 1 {
		rowsNeeded = 1
	}
	if rowsNeeded > g.RowsPerBank {
		rowsNeeded = g.RowsPerBank
	}
	h := sha256.New()
	for row := 0; row < rowsNeeded; row++ {
		data, err := dev.StartupRow(0, row)
		if err != nil {
			return nil, err
		}
		// Retention failures: a sparse, noise-driven set of bit flips whose
		// positions depend on per-cell variation.
		buf := make([]byte, 0, len(data)*8)
		for i, w := range data {
			if noise.Gaussian() > 2.0 {
				w ^= 1 << uint((i*7)%64)
			}
			for b := 0; b < 8; b++ {
				buf = append(buf, byte(w>>uint(8*b)))
			}
		}
		h.Write(buf)
	}
	digest := h.Sum(nil)
	outBits := make([]byte, 0, r.OutputBits)
	for i := 0; i < r.OutputBits; i++ {
		byteIdx := (i / 8) % len(digest)
		outBits = append(outBits, (digest[byteIdx]>>uint(i%8))&1)
	}
	return outBits, nil
}

// StartupTRNG models Tehranipoor+/Eckert+: random bits harvested from DRAM
// power-up values. It requires a power cycle per harvest, so it is not
// streaming-capable.
type StartupTRNG struct {
	// RegionBytes is the amount of DRAM read after power-up (1 MiB in the
	// original work).
	RegionBytes int
	// EntropyBitsPerMiB is the number of usable random bits per mebibyte of
	// startup data (420 Kbit in Tehranipoor+).
	EntropyBitsPerMiB int
}

// NewStartupTRNG returns the Tehranipoor+ configuration used in Table 2.
func NewStartupTRNG() StartupTRNG {
	return StartupTRNG{RegionBytes: 1 << 20, EntropyBitsPerMiB: 420 << 10}
}

// Metrics returns the Table 2 row for the startup-value TRNG.
func (s StartupTRNG) Metrics(p timing.Params, m power.Model) (Metrics, error) {
	if s.RegionBytes <= 0 || s.EntropyBitsPerMiB <= 0 {
		return Metrics{}, fmt.Errorf("baselines: startup TRNG misconfigured: %+v", s)
	}
	// The paper optimistically ignores the DRAM initialisation sequence and
	// charges only a single read burst (~60 ns) as the latency floor.
	readLatencyNS := p.TRCD + p.TCL + p.NS(p.BurstCycles())
	mib := float64(s.RegionBytes) / float64(1<<20)
	totalBits := mib * float64(s.EntropyBitsPerMiB)
	// Energy: read the whole region once.
	wordsToRead := float64(s.RegionBytes*8) / float64(p.WordBits())
	readEnergyNJ := wordsToRead * (m.IDD4R - m.IDD3N) * m.VDD * p.NS(p.BurstCycles()) / 1000
	return Metrics{
		Name:               "Tehranipoor+ (startup values)",
		Year:               2016,
		EntropySource:      "DRAM power-up values",
		TrueRandom:         true,
		StreamingCapable:   false,
		Latency64NS:        readLatencyNS,
		EnergyPerBitNJ:     readEnergyNJ / totalBits,
		PeakThroughputMbps: 0, // no continuous throughput: requires a power cycle
	}, nil
}

// Harvest reads the startup values of the first rows of bank 0 and returns
// up to n bits. A second harvest without a power cycle returns the same
// values, which is why the design cannot stream.
func (s StartupTRNG) Harvest(dev device.Device, n int) ([]byte, error) {
	// The harvest reads bank 0 only, so the device can supply at most one
	// bank's worth of startup bits. Validate before allocating: n is
	// caller-controlled and an unconditional prealloc of n bytes lets a
	// single oversized request (e.g. 1<<40) kill the process.
	if err := checkHarvestSize(dev, n, func(g dram.Geometry) int { return g.CellsPerBank() }, "startup bits"); err != nil {
		return nil, err
	}
	g := dev.Geometry()
	bits := make([]byte, 0, n)
	for row := 0; row < g.RowsPerBank && len(bits) < n; row++ {
		data, err := dev.StartupRow(0, row)
		if err != nil {
			return nil, err
		}
		for _, w := range data {
			for b := 0; b < 64 && len(bits) < n; b++ {
				bits = append(bits, byte((w>>uint(b))&1))
			}
			if len(bits) >= n {
				break
			}
		}
	}
	if len(bits) < n {
		return nil, fmt.Errorf("baselines: device too small for %d startup bits", n)
	}
	return bits, nil
}

// DRangeRow builds the D-RaNGe row of Table 2 from measured values.
func DRangeRow(latency64NS, energyPerBitNJ, peakThroughputMbps float64) Metrics {
	return Metrics{
		Name:               "D-RaNGe (activation failures)",
		Year:               2018,
		EntropySource:      "DRAM activation failures",
		TrueRandom:         true,
		StreamingCapable:   true,
		Latency64NS:        latency64NS,
		EnergyPerBitNJ:     energyPerBitNJ,
		PeakThroughputMbps: peakThroughputMbps,
	}
}

// DRangeRowFromEngine builds the D-RaNGe row of Table 2 from a sharded
// harvesting engine's measured aggregate accounting: the summed per-shard
// throughput models the multi-bank/multi-channel scaling the paper reports,
// and the aggregate 64-bit latency is 64 bits at that rate. The energy per
// bit still comes from the command-trace energy model (core.EnergyEstimate).
func DRangeRowFromEngine(st core.EngineStats, energyPerBitNJ float64) Metrics {
	return DRangeRow(st.Latency64NS, energyPerBitNJ, st.AggregateThroughputMbps)
}

// Table2 assembles the full comparison table given D-RaNGe's measured
// figures.
func Table2(p timing.Params, m power.Model, drange Metrics) ([]Metrics, error) {
	pyo, err := NewCommandScheduleTRNG().Metrics()
	if err != nil {
		return nil, err
	}
	retention, err := NewRetentionTRNG().Metrics(p, m)
	if err != nil {
		return nil, err
	}
	keller := retention
	keller.Name = "Keller+ (data retention)"
	keller.Year = 2014
	startup, err := NewStartupTRNG().Metrics(p, m)
	if err != nil {
		return nil, err
	}
	return []Metrics{pyo, keller, startup, retention, drange}, nil
}

// checkHarvestSize is the shared harvest-request validation: the device must
// be present, the bit count positive, and the request within the harvest
// capacity computed from the device geometry. Validating before allocating
// matters because n is caller-controlled: a single oversized request must
// fail loudly instead of preallocating its output buffer.
func checkHarvestSize(dev device.Device, n int, capacity func(dram.Geometry) int, what string) error {
	if dev == nil {
		return fmt.Errorf("baselines: nil device")
	}
	if n <= 0 {
		return fmt.Errorf("baselines: bit count must be positive, got %d", n)
	}
	if max := capacity(dev.Geometry()); n > max {
		return fmt.Errorf("baselines: %d bits exceed the device's harvest capacity of %d %s", n, max, what)
	}
	return nil
}
