package power

import (
	"testing"

	"repro/internal/timing"
)

func TestModelsValid(t *testing.T) {
	for _, m := range []Model{NewLPDDR4Model(), NewDDR3Model()} {
		if err := m.Validate(); err != nil {
			t.Errorf("built-in model invalid: %v", err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero VDD", func(m *Model) { m.VDD = 0 }},
		{"zero IDD0", func(m *Model) { m.IDD0 = 0 }},
		{"IDD3N below IDD2N", func(m *Model) { m.IDD3N = m.IDD2N - 1 }},
		{"IDD4R below IDD3N", func(m *Model) { m.IDD4R = m.IDD3N - 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewLPDDR4Model()
			tc.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}

func sampleTrace() []timing.Command {
	return []timing.Command{
		{Kind: timing.CmdACT, Bank: 0, Row: 1, IssueCycle: 0},
		{Kind: timing.CmdRead, Bank: 0, Row: 1, Column: 0, IssueCycle: 16},
		{Kind: timing.CmdWrite, Bank: 0, Row: 1, Column: 0, IssueCycle: 30},
		{Kind: timing.CmdPRE, Bank: 0, Row: 1, IssueCycle: 70},
		{Kind: timing.CmdRefresh, IssueCycle: 100},
	}
}

func TestAnalyzeTraceBreakdown(t *testing.T) {
	m := NewLPDDR4Model()
	p := timing.NewLPDDR4()
	b, err := m.AnalyzeTrace(sampleTrace(), p, 400)
	if err != nil {
		t.Fatal(err)
	}
	if b.ActPreNJ <= 0 || b.ReadNJ <= 0 || b.WriteNJ <= 0 || b.RefreshNJ <= 0 || b.BackgroundNJ <= 0 {
		t.Errorf("all components should be positive, got %+v", b)
	}
	if b.TotalNJ() <= b.BackgroundNJ {
		t.Error("total should exceed background alone")
	}
	// ACT/PRE over tRC=60 ns at (65-42) mA, 1.1 V = 1.518 nJ.
	if b.ActPreNJ < 1.0 || b.ActPreNJ > 2.0 {
		t.Errorf("ActPreNJ = %v, want ~1.5 nJ", b.ActPreNJ)
	}
}

func TestAnalyzeTraceValidation(t *testing.T) {
	m := NewLPDDR4Model()
	p := timing.NewLPDDR4()
	if _, err := m.AnalyzeTrace(nil, p, -1); err == nil {
		t.Error("negative duration accepted")
	}
	bad := m
	bad.VDD = 0
	if _, err := bad.AnalyzeTrace(nil, p, 10); err == nil {
		t.Error("invalid model accepted")
	}
	badP := p
	badP.TRC = 0
	if _, err := m.AnalyzeTrace(nil, badP, 10); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestIdleEnergy(t *testing.T) {
	m := NewLPDDR4Model()
	p := timing.NewLPDDR4()
	if got := m.IdleEnergyNJ(p, 0); got != 0 {
		t.Errorf("idle energy of 0 cycles = %v, want 0", got)
	}
	e1 := m.IdleEnergyNJ(p, 1000)
	e2 := m.IdleEnergyNJ(p, 2000)
	if e1 <= 0 || e2 != 2*e1 {
		t.Errorf("idle energy not linear: %v, %v", e1, e2)
	}
}

func TestEnergyPerBit(t *testing.T) {
	m := NewLPDDR4Model()
	p := timing.NewLPDDR4()
	trace := sampleTrace()
	e, err := m.EnergyPerBitNJ(trace, p, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Errorf("energy per bit = %v, want positive", e)
	}
	// Halving the bit count doubles the per-bit energy.
	e1, err := m.EnergyPerBitNJ(trace, p, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 2*e {
		t.Errorf("energy per bit not inversely proportional to bits: %v vs %v", e1, e)
	}
	if _, err := m.EnergyPerBitNJ(trace, p, 400, 0); err == nil {
		t.Error("zero bits accepted")
	}
}

func TestRetentionStyleEnergyIsOrdersOfMagnitudeLarger(t *testing.T) {
	// A retention-based TRNG waits ~40 s in precharge standby to harvest
	// 256 bits; its per-bit energy must be in the millijoule range, versus
	// nanojoules for an access-based mechanism. This is the core of the
	// Table 2 energy comparison.
	m := NewLPDDR4Model()
	p := timing.NewLPDDR4()
	waitCycles := p.Cycles(40e9) // 40 seconds in ns
	idle := m.IdleEnergyNJ(p, waitCycles)
	perBit := idle / 256
	if perBit < 1e6 {
		t.Errorf("retention-style energy per bit = %v nJ, want > 1e6 nJ (millijoules)", perBit)
	}
}
