// Package power implements a DRAMPower-style energy model: per-command
// energies derived from IDD current specifications plus background energy,
// evaluated over a memory-controller command trace. The paper uses this kind
// of model (DRAMPower over Ramulator traces) to report that D-RaNGe costs
// about 4.4 nJ per generated random bit and that retention-based TRNGs cost
// on the order of millijoules per bit.
package power

import (
	"fmt"

	"repro/internal/timing"
)

// Model holds the electrical parameters of a DRAM device: supply voltage and
// the IDD current values from the datasheet (in milliamperes).
type Model struct {
	// VDD is the supply voltage in volts.
	VDD float64
	// IDD0 is the average current of an ACT-PRE cycle (one bank), mA.
	IDD0 float64
	// IDD2N is the precharge-standby current, mA.
	IDD2N float64
	// IDD3N is the active-standby current, mA.
	IDD3N float64
	// IDD4R is the read-burst current, mA.
	IDD4R float64
	// IDD4W is the write-burst current, mA.
	IDD4W float64
	// IDD5 is the refresh current, mA.
	IDD5 float64
}

// NewLPDDR4Model returns electrical parameters representative of an
// LPDDR4-3200 x16 channel.
func NewLPDDR4Model() Model {
	return Model{
		VDD:   1.1,
		IDD0:  65,
		IDD2N: 30,
		IDD3N: 42,
		IDD4R: 150,
		IDD4W: 160,
		IDD5:  250,
	}
}

// NewDDR3Model returns electrical parameters representative of a DDR3-1600
// x64 rank.
func NewDDR3Model() Model {
	return Model{
		VDD:   1.5,
		IDD0:  95,
		IDD2N: 45,
		IDD3N: 62,
		IDD4R: 250,
		IDD4W: 255,
		IDD5:  260,
	}
}

// Validate reports an error if the model is not physically plausible.
func (m Model) Validate() error {
	if m.VDD <= 0 {
		return fmt.Errorf("power: VDD must be positive, got %v", m.VDD)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{{"IDD0", m.IDD0}, {"IDD2N", m.IDD2N}, {"IDD3N", m.IDD3N}, {"IDD4R", m.IDD4R}, {"IDD4W", m.IDD4W}, {"IDD5", m.IDD5}} {
		if c.v <= 0 {
			return fmt.Errorf("power: %s must be positive, got %v", c.name, c.v)
		}
	}
	if m.IDD3N <= m.IDD2N {
		return fmt.Errorf("power: IDD3N (%v) must exceed IDD2N (%v)", m.IDD3N, m.IDD2N)
	}
	if m.IDD4R <= m.IDD3N || m.IDD4W <= m.IDD3N {
		return fmt.Errorf("power: burst currents must exceed active standby")
	}
	return nil
}

// Breakdown is the energy of a command trace split by contribution. All
// values are in nanojoules.
type Breakdown struct {
	ActPreNJ     float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	BackgroundNJ float64
}

// TotalNJ returns the total energy of the breakdown in nanojoules.
func (b Breakdown) TotalNJ() float64 {
	return b.ActPreNJ + b.ReadNJ + b.WriteNJ + b.RefreshNJ + b.BackgroundNJ
}

// energyNJ returns the energy, in nanojoules, of drawing deltaMA
// milliamperes above baseline for durationNS nanoseconds at VDD volts:
// mA × V × ns = pJ, so divide by 1000 for nJ.
func energyNJ(deltaMA, vdd, durationNS float64) float64 {
	return deltaMA * vdd * durationNS / 1000.0
}

// AnalyzeTrace computes the energy breakdown of a command trace executed
// over totalCycles controller cycles with timing parameters p. The
// background term charges active-standby current for the whole duration
// (the trace-driven experiments keep rows open for most of the window); use
// IdleEnergyNJ to compute the baseline to subtract, as the paper does.
func (m Model) AnalyzeTrace(trace []timing.Command, p timing.Params, totalCycles int64) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if totalCycles < 0 {
		return Breakdown{}, fmt.Errorf("power: negative trace duration %d", totalCycles)
	}
	var b Breakdown
	burstNS := p.NS(p.BurstCycles())
	for _, cmd := range trace {
		switch cmd.Kind {
		case timing.CmdACT:
			// The ACT/PRE pair energy is conventionally charged to the ACT.
			b.ActPreNJ += energyNJ(m.IDD0-m.IDD3N, m.VDD, p.TRC)
		case timing.CmdPRE:
			// Accounted with the ACT.
		case timing.CmdRead:
			b.ReadNJ += energyNJ(m.IDD4R-m.IDD3N, m.VDD, burstNS)
		case timing.CmdWrite:
			b.WriteNJ += energyNJ(m.IDD4W-m.IDD3N, m.VDD, burstNS)
		case timing.CmdRefresh:
			b.RefreshNJ += energyNJ(m.IDD5-m.IDD3N, m.VDD, p.TRFC)
		}
	}
	b.BackgroundNJ = energyNJ(m.IDD3N, m.VDD, p.NS(totalCycles))
	return b, nil
}

// IdleEnergyNJ returns the energy of the device sitting idle (precharge
// standby) for the given number of cycles — the baseline the paper subtracts
// to isolate the energy attributable to random-number generation.
func (m Model) IdleEnergyNJ(p timing.Params, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return energyNJ(m.IDD2N, m.VDD, p.NS(cycles))
}

// EnergyPerBitNJ computes the marginal energy per generated random bit: the
// trace energy minus the idle baseline over the same duration, divided by
// the number of bits produced.
func (m Model) EnergyPerBitNJ(trace []timing.Command, p timing.Params, totalCycles int64, bits int64) (float64, error) {
	if bits <= 0 {
		return 0, fmt.Errorf("power: bits must be positive, got %d", bits)
	}
	b, err := m.AnalyzeTrace(trace, p, totalCycles)
	if err != nil {
		return 0, err
	}
	marginal := b.TotalNJ() - m.IdleEnergyNJ(p, totalCycles)
	if marginal < 0 {
		marginal = 0
	}
	return marginal / float64(bits), nil
}
