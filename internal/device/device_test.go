package device_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/dram"
	"repro/internal/timing"
)

// openSim builds the reference implementation of the contract: the simulated
// device, small and deterministic so the contract suite runs in milliseconds.
func openSim(t *testing.T) device.Device {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Serial:       7,
		Manufacturer: dram.Manufacturer("A"),
		Geometry: dram.Geometry{
			Banks:        4,
			RowsPerBank:  64,
			ColsPerRow:   1024,
			SubarrayRows: 32,
			WordBits:     256,
		},
		Timing: timing.NewLPDDR4(),
		Noise:  dram.NewDeterministicBankNoise(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// runDeviceContract is the contract suite every Device implementation must
// pass. It checks the documented semantics layer by layer: identity and
// shape, row/column command ordering, the profiling shortcuts, environment,
// accounting, and bank-level concurrency safety. New backends should call it
// from their own tests with their opener.
func runDeviceContract(t *testing.T, open func(t *testing.T) device.Device) {
	t.Run("IdentityAndShape", func(t *testing.T) {
		dev := open(t)
		if err := dev.Geometry().Validate(); err != nil {
			t.Errorf("Geometry does not validate: %v", err)
		}
		if err := dev.Timing().Validate(); err != nil {
			t.Errorf("Timing does not validate: %v", err)
		}
		if dev.Serial() != open(t).Serial() {
			t.Error("Serial is not stable across opens of the same identity")
		}
	})

	t.Run("RowCommandOrdering", func(t *testing.T) {
		dev := open(t)
		trcd := dev.Timing().TRCD
		if err := dev.Activate(0, 3, trcd); err != nil {
			t.Fatalf("Activate: %v", err)
		}
		// Activating an open bank is an error, whatever the row.
		if err := dev.Activate(0, 5, trcd); err == nil {
			t.Error("double Activate accepted")
		}
		// Refresh requires every bank precharged.
		if err := dev.Refresh(); err == nil {
			t.Error("Refresh accepted with an open row")
		}
		if err := dev.Precharge(0); err != nil {
			t.Fatalf("Precharge: %v", err)
		}
		// Precharging a closed bank is a no-op, not an error.
		if err := dev.Precharge(0); err != nil {
			t.Errorf("Precharge of a closed bank: %v", err)
		}
		if err := dev.Refresh(); err != nil {
			t.Errorf("Refresh with all banks closed: %v", err)
		}
		// Commands on out-of-range banks and invalid latencies fail loudly.
		if err := dev.Activate(dev.Geometry().Banks, 0, trcd); err == nil {
			t.Error("Activate on an out-of-range bank accepted")
		}
		if err := dev.Activate(1, 0, -1); err == nil {
			t.Error("negative activation latency accepted")
		}
	})

	t.Run("ColumnAccess", func(t *testing.T) {
		dev := open(t)
		g := dev.Geometry()
		trcd := dev.Timing().TRCD
		// Reads and writes require an open row.
		if _, err := dev.ReadWord(1, 0); err == nil {
			t.Error("ReadWord without an open row accepted")
		}
		if err := dev.Activate(1, 2, trcd); err != nil {
			t.Fatal(err)
		}
		defer dev.Precharge(1)
		word := make([]uint64, g.WordBits/64)
		for i := range word {
			word[i] = 0xA5A5A5A5A5A5A5A5
		}
		if err := dev.WriteWord(1, 1, word); err != nil {
			t.Fatalf("WriteWord: %v", err)
		}
		got, err := dev.ReadWord(1, 1)
		if err != nil {
			t.Fatalf("ReadWord: %v", err)
		}
		if len(got) != len(word) {
			t.Fatalf("ReadWord returned %d uint64s, want %d", len(got), len(word))
		}
		// A full-latency activation carries no failure injection, so the
		// write must read back exactly.
		for i := range got {
			if got[i] != word[i] {
				t.Errorf("word[%d] = %#x after full-latency write/read, want %#x", i, got[i], word[i])
			}
		}
		// The returned slice is a copy: mutating it must not change the array.
		got[0] = 0
		again, err := dev.ReadWord(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if again[0] != word[0] {
			t.Error("ReadWord returned a slice aliasing device storage")
		}
		if _, err := dev.ReadWord(1, g.WordsPerRow()); err == nil {
			t.Error("out-of-range word index accepted")
		}
	})

	t.Run("ProfilingShortcuts", func(t *testing.T) {
		dev := open(t)
		g := dev.Geometry()
		row := make([]uint64, g.ColsPerRow/64)
		for i := range row {
			row[i] = uint64(i) * 0x9E3779B97F4A7C15
		}
		if err := dev.WriteRow(2, 9, row); err != nil {
			t.Fatalf("WriteRow: %v", err)
		}
		got, err := dev.ReadRowRaw(2, 9)
		if err != nil {
			t.Fatalf("ReadRowRaw: %v", err)
		}
		for i := range got {
			if got[i] != row[i] {
				t.Fatalf("ReadRowRaw[%d] = %#x, want %#x (shortcuts must bypass injection)", i, got[i], row[i])
			}
		}
		// StartupRow is deterministic per location and must not disturb the
		// stored array content.
		s1, err := dev.StartupRow(2, 9)
		if err != nil {
			t.Fatalf("StartupRow: %v", err)
		}
		s2, err := dev.StartupRow(2, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatal("StartupRow is not stable across calls")
			}
		}
		after, err := dev.ReadRowRaw(2, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range after {
			if after[i] != row[i] {
				t.Fatal("StartupRow disturbed the stored row content")
			}
		}
	})

	t.Run("Environment", func(t *testing.T) {
		dev := open(t)
		base := dev.Temperature()
		if err := dev.SetTemperature(base + 15); err != nil {
			t.Fatalf("SetTemperature: %v", err)
		}
		if got := dev.Temperature(); got != base+15 {
			t.Errorf("Temperature = %v after SetTemperature(%v)", got, base+15)
		}
		if err := dev.SetTemperature(1e9); err == nil {
			t.Error("implausible temperature accepted")
		}
	})

	t.Run("Accounting", func(t *testing.T) {
		dev := open(t)
		trcd := dev.Timing().TRCD
		before := dev.Stats()
		if err := dev.Activate(0, 0, trcd/2); err != nil {
			t.Fatal(err)
		}
		if _, err := dev.ReadWord(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := dev.Precharge(0); err != nil {
			t.Fatal(err)
		}
		st := dev.Stats()
		if st.Activates != before.Activates+1 || st.Reads != before.Reads+1 || st.Precharges != before.Precharges+1 {
			t.Errorf("stats %+v after one activate/read/precharge over %+v", st, before)
		}
		if st.ReducedTRCDAct != before.ReducedTRCDAct+1 {
			t.Errorf("reduced-tRCD activation not counted: %+v", st)
		}
	})

	t.Run("BankConcurrency", func(t *testing.T) {
		// The sharded engine drives disjoint banks from different
		// goroutines; the contract requires that to be safe.
		dev := open(t)
		g := dev.Geometry()
		trcd := dev.Timing().TRCD
		var wg sync.WaitGroup
		errs := make(chan error, g.Banks)
		for bank := 0; bank < g.Banks; bank++ {
			wg.Add(1)
			go func(bank int) {
				defer wg.Done()
				for i := 0; i < 32; i++ {
					row := i % g.RowsPerBank
					if err := dev.Activate(bank, row, trcd/2); err != nil {
						errs <- fmt.Errorf("bank %d activate: %w", bank, err)
						return
					}
					if _, err := dev.ReadWord(bank, i%g.WordsPerRow()); err != nil {
						errs <- fmt.Errorf("bank %d read: %w", bank, err)
						return
					}
					if err := dev.Precharge(bank); err != nil {
						errs <- fmt.Errorf("bank %d precharge: %w", bank, err)
						return
					}
				}
			}(bank)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

// TestSimDeviceContract runs the contract suite against the reference
// simulated backend.
func TestSimDeviceContract(t *testing.T) {
	runDeviceContract(t, openSim)
}

// TestReducedLatencyInjection pins the property the whole pipeline rests on
// and the contract documents: a reduced-tRCD activation arms failure
// injection for the first word read, a full-latency activation never flips a
// bit.
func TestReducedLatencyInjection(t *testing.T) {
	dev := openSim(t)
	g := dev.Geometry()
	full := dev.Timing().TRCD
	row := make([]uint64, g.ColsPerRow/64) // all zeros
	flips := 0
	for r := 0; r < 32; r++ {
		if err := dev.WriteRow(3, r, row); err != nil {
			t.Fatal(err)
		}
		if err := dev.Activate(3, r, 4.0); err != nil {
			t.Fatal(err)
		}
		w, err := dev.ReadWord(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range w {
			for ; u != 0; u &= u - 1 {
				flips++
			}
		}
		if err := dev.Precharge(3); err != nil {
			t.Fatal(err)
		}
	}
	if flips == 0 {
		t.Error("no activation failures injected across 32 reduced-tRCD reads of an all-zero pattern")
	}
	if got := dev.Stats().InjectedFlips; int(got) != flips {
		t.Errorf("InjectedFlips = %d, observed %d flipped cells", got, flips)
	}

	// Full-latency control: same pattern, no flips.
	for r := 0; r < 8; r++ {
		if err := dev.WriteRow(0, r, row); err != nil {
			t.Fatal(err)
		}
		if err := dev.Activate(0, r, full); err != nil {
			t.Fatal(err)
		}
		w, err := dev.ReadWord(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range w {
			if u != 0 {
				t.Fatalf("full-latency read flipped bits: %#x", u)
			}
		}
		if err := dev.Precharge(0); err != nil {
			t.Fatal(err)
		}
	}
}
