// Package device defines the device contract the D-RaNGe stack is written
// against. Every layer that drives DRAM — the memory-controller model
// (internal/memctrl), the harvesting core and sharded engine (internal/core),
// the characterization profiler (internal/profiler) and the prior-work
// baselines (internal/baselines) — accepts this interface instead of the
// concrete simulated *dram.Device, so alternative backends (operation
// record/replay, fault injection, and eventually real-hardware shims) can be
// swapped in without touching the pipeline.
//
// The public facade (package drange) mirrors this contract with public types
// as drange.Device and adapts registered backends onto it.
package device

import (
	"repro/internal/dram"
	"repro/internal/timing"
)

// Device is the minimal DRAM-device contract the pipeline needs: geometry and
// timing discovery, row activation at a caller-chosen (possibly reduced) tRCD
// with precharge/refresh, DRAM-word column accesses, the whole-row profiling
// conveniences, temperature, and operation statistics.
//
// Implementations must be safe for concurrent use by multiple goroutines: the
// paper exploits bank-level parallelism, and the sharded engine drives
// different banks from different goroutines.
type Device interface {
	// Serial identifies the device instance. Profiles are keyed on it: RNG
	// cell locations are per-device process variation, so a profile must only
	// ever be opened against the device it was characterized on.
	Serial() uint64
	// Geometry describes the addressable organisation of the device.
	Geometry() dram.Geometry
	// Timing returns the device's JEDEC timing parameter set; controllers
	// schedule commands and convert cycles to wall time with it.
	Timing() timing.Params

	// Activate opens row in bank with the given activation latency in
	// nanoseconds. Activating below the cell-dependent critical latency arms
	// activation-failure injection for the first word read from the row.
	// Activating an already-open bank is an error.
	Activate(bank, row int, trcdNS float64) error
	// Precharge closes the open row of bank (no-op when already closed).
	Precharge(bank int) error
	// Refresh performs an all-bank refresh; every bank must be precharged.
	Refresh() error
	// ReadWord reads DRAM word wordIdx from the row open in bank. The first
	// word read after a reduced-tRCD activation carries activation failures.
	ReadWord(bank, wordIdx int) ([]uint64, error)
	// WriteWord writes DRAM word wordIdx of the row open in bank.
	WriteWord(bank, wordIdx int, word []uint64) error

	// WriteRow writes the full content of (bank, row) directly, bypassing the
	// command interface — the profiling shortcut for installing data patterns.
	WriteRow(bank, row int, data []uint64) error
	// ReadRowRaw returns the stored content of (bank, row) without opening
	// the row and without failure injection.
	ReadRowRaw(bank, row int) ([]uint64, error)
	// StartupRow returns the power-up content of (bank, row), used by the
	// startup-value TRNG baselines. It must not disturb device state.
	StartupRow(bank, row int) ([]uint64, error)

	// SetTemperature sets the DRAM temperature in degrees Celsius;
	// Temperature reports it. Failure probabilities are
	// temperature-dependent (Section 5.3 of the paper), which is why pool
	// health monitoring watches this value for drift.
	SetTemperature(c float64) error
	Temperature() float64

	// Stats returns a snapshot of the device's operation counters.
	Stats() dram.DeviceStats
}

// The simulated device is the reference implementation of the contract.
var _ Device = (*dram.Device)(nil)

// WordReaderInto is an optional device capability: an allocation-free
// ReadWord variant writing into a caller-owned buffer. The memory controller
// uses it when present (the simulator implements it); wrapping backends that
// do not are served through ReadWord with a copy.
type WordReaderInto interface {
	// ReadWordInto reads DRAM word wordIdx from the row open in bank into
	// dst, which must hold Geometry().WordBits/64 uint64s. Failure-injection
	// semantics match ReadWord exactly.
	ReadWordInto(bank, wordIdx int, dst []uint64) error
}

var _ WordReaderInto = (*dram.Device)(nil)
