package nist

import (
	"errors"
	"fmt"
)

// DefaultAlpha is the significance level the paper uses for Table 1
// (α = 0.0001, the value recommended by the NIST documentation).
const DefaultAlpha = 0.0001

// ErrInsufficientData reports that a bitstream is too short for the requested
// test (or, from RunAll, too short for any test of the suite). Callers that
// stream bits — the online health subsystem's startup self-test in particular
// — match it with errors.Is to distinguish "not enough bits yet" from a test
// that actually failed.
var ErrInsufficientData = errors.New("insufficient data")

// Result is the outcome of one NIST test over one bitstream.
type Result struct {
	// Name is the test name as reported in Table 1 of the paper.
	Name string
	// PValue is the headline p-value of the test (the minimum when the test
	// produces several).
	PValue float64
	// PValues holds every p-value the test produced.
	PValues []float64
	// Applicable is false when the bitstream did not meet the test's
	// minimum-length (or minimum-cycles) requirement, in which case PValue
	// is meaningless.
	Applicable bool
	// Pass reports whether every p-value met the significance level used
	// when the result was evaluated. It is false for inapplicable results.
	Pass bool
	// Detail carries an optional human-readable note (e.g. chosen block
	// size).
	Detail string
}

// newResult builds an applicable result from one or more p-values, clamping
// them into [0, 1].
func newResult(name string, detail string, pvalues ...float64) Result {
	r := Result{Name: name, Applicable: true, Detail: detail}
	min := 1.0
	for _, p := range pvalues {
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		r.PValues = append(r.PValues, p)
		if p < min {
			min = p
		}
	}
	r.PValue = min
	return r
}

// notApplicable builds a result marking the test as not applicable to the
// supplied bitstream.
func notApplicable(name, why string) Result {
	return Result{Name: name, Applicable: false, Detail: why}
}

// Evaluate sets Pass according to the significance level alpha: the test
// passes when it is applicable and every p-value is at least alpha.
func (r *Result) Evaluate(alpha float64) {
	if !r.Applicable {
		r.Pass = false
		return
	}
	r.Pass = true
	for _, p := range r.PValues {
		if p < alpha {
			r.Pass = false
			return
		}
	}
}

// String implements fmt.Stringer.
func (r Result) String() string {
	status := "PASS"
	if !r.Applicable {
		status = "N/A"
	} else if !r.Pass {
		status = "FAIL"
	}
	return fmt.Sprintf("%-38s p=%.4f %s", r.Name, r.PValue, status)
}

func validateBits(bits []byte, minLen int, name string) error {
	if len(bits) < minLen {
		return fmt.Errorf("nist: %s requires at least %d bits, got %d: %w", name, minLen, len(bits), ErrInsufficientData)
	}
	for i, b := range bits {
		if b > 1 {
			return fmt.Errorf("nist: %s: bit %d has value %d; bitstreams must contain only 0 and 1", name, i, b)
		}
	}
	return nil
}
