package nist

import (
	"fmt"
	"math"
)

// maurerParams maps the block length L of Maurer's universal statistical
// test to the expected value and variance of the statistic.
var maurerParams = map[int]struct{ expected, variance float64 }{
	6:  {5.2177052, 2.954},
	7:  {6.1962507, 3.125},
	8:  {7.1836656, 3.238},
	9:  {8.1764248, 3.311},
	10: {9.1723243, 3.356},
	11: {10.170032, 3.384},
	12: {11.168765, 3.401},
	13: {12.168070, 3.410},
	14: {13.167693, 3.416},
	15: {14.167488, 3.419},
	16: {15.167379, 3.421},
}

// MaurersUniversal implements Maurer's universal statistical test. It needs
// at least 387,840 bits (block length L = 6); shorter streams are reported
// as not applicable.
func MaurersUniversal(bits []byte) (Result, error) {
	const name = "maurers_universal"
	if err := validateBits(bits, 1000, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	l := 0
	switch {
	case n >= 1059061760:
		l = 16
	case n >= 496435200:
		l = 15
	case n >= 231669760:
		l = 14
	case n >= 107560960:
		l = 13
	case n >= 49643520:
		l = 12
	case n >= 22753280:
		l = 11
	case n >= 10342400:
		l = 10
	case n >= 4654080:
		l = 9
	case n >= 2068480:
		l = 8
	case n >= 904960:
		l = 7
	case n >= 387840:
		l = 6
	default:
		return notApplicable(name, fmt.Sprintf("needs at least 387840 bits, have %d", n)), nil
	}
	q := 10 * (1 << uint(l))
	k := n/l - q
	params := maurerParams[l]

	table := make([]int, 1<<uint(l))
	block := func(i int) int {
		v := 0
		for j := 0; j < l; j++ {
			v = v<<1 | int(bits[i*l+j])
		}
		return v
	}
	for i := 0; i < q; i++ {
		table[block(i)] = i + 1
	}
	sum := 0.0
	for i := q; i < q+k; i++ {
		b := block(i)
		sum += math.Log2(float64(i + 1 - table[b]))
		table[b] = i + 1
	}
	fn := sum / float64(k)
	c := 0.7 - 0.8/float64(l) + (4+32/float64(l))*math.Pow(float64(k), -3/float64(l))/15
	sigma := c * math.Sqrt(params.variance/float64(k))
	p := erfc(math.Abs(fn-params.expected) / (math.Sqrt2 * sigma))
	return newResult(name, fmt.Sprintf("L=%d K=%d", l, k), p), nil
}

// LinearComplexity implements the linear complexity test with block size
// M = 500. Streams providing fewer than 20 blocks are reported as not
// applicable.
func LinearComplexity(bits []byte) (Result, error) {
	const name = "linear_complexity"
	if err := validateBits(bits, 1000, name); err != nil {
		return Result{}, err
	}
	const m = 500
	const k = 6
	pi := []float64{0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833}
	n := len(bits)
	nBlocks := n / m
	if nBlocks < 20 {
		return notApplicable(name, fmt.Sprintf("needs at least %d bits for 20 blocks of %d, have %d", 20*m, m, n)), nil
	}
	sign := 1.0
	if m%2 == 1 {
		sign = -1.0
	}
	mu := float64(m)/2 + (9+(-sign))/36 - (float64(m)/3+2.0/9)/math.Pow(2, float64(m))
	counts := make([]int, k+1)
	for b := 0; b < nBlocks; b++ {
		lc := berlekampMassey(bits[b*m : (b+1)*m])
		t := sign*(float64(lc)-mu) + 2.0/9
		var idx int
		switch {
		case t <= -2.5:
			idx = 0
		case t <= -1.5:
			idx = 1
		case t <= -0.5:
			idx = 2
		case t <= 0.5:
			idx = 3
		case t <= 1.5:
			idx = 4
		case t <= 2.5:
			idx = 5
		default:
			idx = 6
		}
		counts[idx]++
	}
	chi2 := 0.0
	for i := 0; i <= k; i++ {
		expected := float64(nBlocks) * pi[i]
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
	}
	p, err := igamc(float64(k)/2, chi2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("blocks=%d", nBlocks), p), nil
}

// psiSquared computes the ψ²_m statistic of the serial test: overlapping
// m-bit pattern frequencies with wraparound.
func psiSquared(bits []byte, m int) float64 {
	if m <= 0 {
		return 0
	}
	n := len(bits)
	counts := make([]int, 1<<uint(m))
	for i := 0; i < n; i++ {
		v := 0
		for j := 0; j < m; j++ {
			v = v<<1 | int(bits[(i+j)%n])
		}
		counts[v]++
	}
	sum := 0.0
	for _, c := range counts {
		sum += float64(c) * float64(c)
	}
	return sum*math.Pow(2, float64(m))/float64(n) - float64(n)
}

// serialBlockLength picks the pattern length m for the serial and
// approximate entropy tests: the largest m ≤ 5 satisfying m < log2(n) - 2.
func serialBlockLength(n int) int {
	m := int(math.Floor(math.Log2(float64(n)))) - 3
	if m > 5 {
		m = 5
	}
	if m < 2 {
		m = 2
	}
	return m
}

// Serial implements the serial test, producing two p-values (∇ψ² and ∇²ψ²).
func Serial(bits []byte) (Result, error) {
	const name = "serial"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	m := serialBlockLength(len(bits))
	psiM := psiSquared(bits, m)
	psiM1 := psiSquared(bits, m-1)
	psiM2 := psiSquared(bits, m-2)
	del1 := psiM - psiM1
	del2 := psiM - 2*psiM1 + psiM2
	p1, err := igamc(math.Pow(2, float64(m-2)), del1/2)
	if err != nil {
		return Result{}, err
	}
	p2, err := igamc(math.Pow(2, float64(m-3)), del2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("m=%d", m), p1, p2), nil
}

// ApproximateEntropy implements the approximate entropy test.
func ApproximateEntropy(bits []byte) (Result, error) {
	const name = "approximate_entropy"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	m := serialBlockLength(n) - 1
	if m < 1 {
		m = 1
	}
	phi := func(mm int) float64 {
		counts := make([]int, 1<<uint(mm))
		for i := 0; i < n; i++ {
			v := 0
			for j := 0; j < mm; j++ {
				v = v<<1 | int(bits[(i+j)%n])
			}
			counts[v]++
		}
		sum := 0.0
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(n)
			sum += p * math.Log(p)
		}
		return sum
	}
	apEn := phi(m) - phi(m+1)
	chi2 := 2 * float64(n) * (math.Log(2) - apEn)
	if chi2 < 0 {
		chi2 = 0
	}
	p, err := igamc(math.Pow(2, float64(m-1)), chi2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("m=%d", m), p), nil
}

// CumulativeSums implements the cumulative sums (cusum) test in both the
// forward and backward directions, producing two p-values.
func CumulativeSums(bits []byte) (Result, error) {
	const name = "cumulative_sums"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	pvalue := func(forward bool) float64 {
		s, z := 0, 0
		for i := 0; i < n; i++ {
			idx := i
			if !forward {
				idx = n - 1 - i
			}
			if bits[idx] == 1 {
				s++
			} else {
				s--
			}
			if abs := int(math.Abs(float64(s))); abs > z {
				z = abs
			}
		}
		fz := float64(z)
		fn := float64(n)
		sum1 := 0.0
		for k := int(math.Floor((-fn/fz + 1) / 4)); k <= int(math.Floor((fn/fz-1)/4)); k++ {
			sum1 += stdNormalCDF((4*float64(k)+1)*fz/math.Sqrt(fn)) - stdNormalCDF((4*float64(k)-1)*fz/math.Sqrt(fn))
		}
		sum2 := 0.0
		for k := int(math.Floor((-fn/fz - 3) / 4)); k <= int(math.Floor((fn/fz-1)/4)); k++ {
			sum2 += stdNormalCDF((4*float64(k)+3)*fz/math.Sqrt(fn)) - stdNormalCDF((4*float64(k)+1)*fz/math.Sqrt(fn))
		}
		return 1 - sum1 + sum2
	}
	return newResult(name, "", pvalue(true), pvalue(false)), nil
}

// excursionCycles splits the ±1 random walk of the bitstream into
// zero-to-zero cycles and returns, for each cycle, the number of visits to
// each state in [-maxState, maxState] (excluding zero).
func excursionCycles(bits []byte, maxState int) (cycles [][]int, totalVisits []int) {
	n := len(bits)
	s := 0
	current := make([]int, 2*maxState+1)
	totalVisits = make([]int, 2*maxState+1)
	flush := func() {
		c := make([]int, len(current))
		copy(c, current)
		cycles = append(cycles, c)
		for i := range current {
			current[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		if bits[i] == 1 {
			s++
		} else {
			s--
		}
		if s == 0 {
			flush()
			continue
		}
		if s >= -maxState && s <= maxState {
			current[s+maxState]++
			totalVisits[s+maxState]++
		}
	}
	// The final partial cycle is closed by appending a virtual zero.
	flush()
	return cycles, totalVisits
}

// minExcursionCycles is the minimum number of zero-crossing cycles the
// random excursions tests require to be applicable (NIST recommends 500).
const minExcursionCycles = 500

// RandomExcursion implements the random excursions test, producing one
// p-value per state x ∈ {-4..-1, 1..4}.
func RandomExcursion(bits []byte) (Result, error) {
	const name = "random_excursion"
	if err := validateBits(bits, 1000, name); err != nil {
		return Result{}, err
	}
	const maxState = 4
	cycles, _ := excursionCycles(bits, maxState)
	j := len(cycles)
	if j < minExcursionCycles {
		return notApplicable(name, fmt.Sprintf("only %d cycles, need %d", j, minExcursionCycles)), nil
	}
	piK := func(x, k int) float64 {
		ax := math.Abs(float64(x))
		switch {
		case k == 0:
			return 1 - 1/(2*ax)
		case k < 5:
			return 1 / (4 * ax * ax) * math.Pow(1-1/(2*ax), float64(k-1))
		default:
			return 1 / (2 * ax) * math.Pow(1-1/(2*ax), 4)
		}
	}
	var pvalues []float64
	for _, x := range []int{-4, -3, -2, -1, 1, 2, 3, 4} {
		counts := make([]int, 6)
		for _, cycle := range cycles {
			v := cycle[x+maxState]
			if v > 5 {
				v = 5
			}
			counts[v]++
		}
		chi2 := 0.0
		for k := 0; k <= 5; k++ {
			expected := float64(j) * piK(x, k)
			diff := float64(counts[k]) - expected
			chi2 += diff * diff / expected
		}
		p, err := igamc(2.5, chi2/2)
		if err != nil {
			return Result{}, err
		}
		pvalues = append(pvalues, p)
	}
	return newResult(name, fmt.Sprintf("J=%d", j), pvalues...), nil
}

// RandomExcursionVariant implements the random excursions variant test,
// producing one p-value per state x ∈ {-9..-1, 1..9}.
func RandomExcursionVariant(bits []byte) (Result, error) {
	const name = "random_excursion_variant"
	if err := validateBits(bits, 1000, name); err != nil {
		return Result{}, err
	}
	const maxState = 9
	cycles, totalVisits := excursionCycles(bits, maxState)
	j := len(cycles)
	if j < minExcursionCycles {
		return notApplicable(name, fmt.Sprintf("only %d cycles, need %d", j, minExcursionCycles)), nil
	}
	var pvalues []float64
	for x := -9; x <= 9; x++ {
		if x == 0 {
			continue
		}
		xi := float64(totalVisits[x+maxState])
		denom := math.Sqrt(2 * float64(j) * (4*math.Abs(float64(x)) - 2))
		p := erfc(math.Abs(xi-float64(j)) / denom)
		pvalues = append(pvalues, p)
	}
	return newResult(name, fmt.Sprintf("J=%d", j), pvalues...), nil
}
