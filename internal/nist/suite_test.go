package nist

import (
	"errors"
	"testing"
)

// TestRunAllInsufficientDataTyped: streams too short for any test return the
// typed ErrInsufficientData (so streaming callers, e.g. the health startup
// self-test, can distinguish "not enough bits yet" from a failure), while
// streams long enough for some tests report the rest as not applicable.
func TestRunAllInsufficientDataTyped(t *testing.T) {
	_, err := RunAll(prngBits(MinSuiteBits-1, 1), DefaultAlpha)
	if !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("RunAll on %d bits = %v, want ErrInsufficientData", MinSuiteBits-1, err)
	}
	// Individual tests surface the same typed error.
	if _, err := Monobit(prngBits(10, 1)); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Monobit on 10 bits = %v, want ErrInsufficientData", err)
	}
	// 2000 bits: monobit applies, linear complexity (needs 10320) does not —
	// the suite must succeed and mark the long tests not applicable.
	res, err := RunAll(prngBits(2000, 1), DefaultAlpha)
	if err != nil {
		t.Fatalf("RunAll on 2000 bits: %v", err)
	}
	if len(res.Results) != 15 {
		t.Fatalf("suite ran %d tests, want 15", len(res.Results))
	}
	mono, err := res.Lookup("monobit")
	if err != nil || !mono.Applicable {
		t.Errorf("monobit not applicable on 2000 bits: %+v %v", mono, err)
	}
	lc, err := res.Lookup("linear_complexity")
	if err != nil || lc.Applicable || lc.Pass {
		t.Errorf("linear complexity should be inapplicable on 2000 bits: %+v %v", lc, err)
	}
}

func TestRunAllOnPseudorandomStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run is slow")
	}
	bits := prngBits(1_050_000, 0xDEADBEEF)
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 15 {
		t.Fatalf("suite ran %d tests, want 15", len(res.Results))
	}
	passed, applicable := res.Passed()
	if applicable < 13 {
		t.Errorf("only %d tests applicable to a 1 Mb stream; want at least 13", applicable)
	}
	if passed != applicable {
		for _, r := range res.Results {
			if r.Applicable && !r.Pass {
				t.Errorf("test %s failed on a pseudorandom stream: p=%v (%s)", r.Name, r.PValue, r.Detail)
			}
		}
	}
	if !res.AllPass() {
		t.Error("AllPass should be true for a pseudorandom 1 Mb stream")
	}
	if _, err := res.Lookup("monobit"); err != nil {
		t.Errorf("Lookup(monobit): %v", err)
	}
	if _, err := res.Lookup("no-such-test"); err == nil {
		t.Error("Lookup of unknown test succeeded")
	}
}

func TestRunAllOnBiasedStreamFails(t *testing.T) {
	// A stream with 60% ones must fail the suite decisively.
	bits := make([]byte, 200000)
	s := uint64(12345)
	for i := range bits {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%10 < 6 {
			bits[i] = 1
		}
	}
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllPass() {
		t.Error("a 60 percent biased stream passed the suite")
	}
	mono, err := res.Lookup("monobit")
	if err != nil {
		t.Fatal(err)
	}
	if mono.Pass {
		t.Error("monobit passed a 60 percent biased stream")
	}
}

func TestRunAllValidation(t *testing.T) {
	bits := prngBits(1000, 1)
	if _, err := RunAll(bits, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := RunAll(bits, 1); err == nil {
		t.Error("alpha 1 accepted")
	}
	if _, err := RunAll(prngBits(10, 1), DefaultAlpha); err == nil {
		t.Error("10-bit stream accepted")
	}
}

func TestTestNamesMatchSuiteOrder(t *testing.T) {
	names := TestNames()
	if len(names) != 15 {
		t.Fatalf("TestNames has %d entries, want 15", len(names))
	}
	bits := prngBits(50000, 7)
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if r.Name != names[i] {
			t.Errorf("result %d is %q, want %q", i, r.Name, names[i])
		}
	}
}
