package nist

import "testing"

func TestRunAllOnPseudorandomStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite run is slow")
	}
	bits := prngBits(1_050_000, 0xDEADBEEF)
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 15 {
		t.Fatalf("suite ran %d tests, want 15", len(res.Results))
	}
	passed, applicable := res.Passed()
	if applicable < 13 {
		t.Errorf("only %d tests applicable to a 1 Mb stream; want at least 13", applicable)
	}
	if passed != applicable {
		for _, r := range res.Results {
			if r.Applicable && !r.Pass {
				t.Errorf("test %s failed on a pseudorandom stream: p=%v (%s)", r.Name, r.PValue, r.Detail)
			}
		}
	}
	if !res.AllPass() {
		t.Error("AllPass should be true for a pseudorandom 1 Mb stream")
	}
	if _, err := res.Lookup("monobit"); err != nil {
		t.Errorf("Lookup(monobit): %v", err)
	}
	if _, err := res.Lookup("no-such-test"); err == nil {
		t.Error("Lookup of unknown test succeeded")
	}
}

func TestRunAllOnBiasedStreamFails(t *testing.T) {
	// A stream with 60% ones must fail the suite decisively.
	bits := make([]byte, 200000)
	s := uint64(12345)
	for i := range bits {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		if s%10 < 6 {
			bits[i] = 1
		}
	}
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllPass() {
		t.Error("a 60 percent biased stream passed the suite")
	}
	mono, err := res.Lookup("monobit")
	if err != nil {
		t.Fatal(err)
	}
	if mono.Pass {
		t.Error("monobit passed a 60 percent biased stream")
	}
}

func TestRunAllValidation(t *testing.T) {
	bits := prngBits(1000, 1)
	if _, err := RunAll(bits, 0); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := RunAll(bits, 1); err == nil {
		t.Error("alpha 1 accepted")
	}
	if _, err := RunAll(prngBits(10, 1), DefaultAlpha); err == nil {
		t.Error("10-bit stream accepted")
	}
}

func TestTestNamesMatchSuiteOrder(t *testing.T) {
	names := TestNames()
	if len(names) != 15 {
		t.Fatalf("TestNames has %d entries, want 15", len(names))
	}
	bits := prngBits(50000, 7)
	res, err := RunAll(bits, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Results {
		if r.Name != names[i] {
			t.Errorf("result %d is %q, want %q", i, r.Name, names[i])
		}
	}
}
