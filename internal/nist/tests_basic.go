package nist

import (
	"fmt"
	"math"
)

// Monobit implements the frequency (monobit) test: the proportion of ones
// must be consistent with one half.
func Monobit(bits []byte) (Result, error) {
	const name = "monobit"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	sum := 0
	for _, b := range bits {
		if b == 1 {
			sum++
		} else {
			sum--
		}
	}
	s := math.Abs(float64(sum)) / math.Sqrt(float64(len(bits)))
	p := erfc(s / math.Sqrt2)
	return newResult(name, "", p), nil
}

// FrequencyWithinBlock implements the frequency-within-a-block test with an
// automatically chosen block size.
func FrequencyWithinBlock(bits []byte) (Result, error) {
	const name = "frequency_within_block"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	m := 128
	if n < 12800 {
		m = n / 10
		if m < 20 {
			m = 20
		}
	}
	nBlocks := n / m
	chi2 := 0.0
	for i := 0; i < nBlocks; i++ {
		ones := 0
		for j := 0; j < m; j++ {
			ones += int(bits[i*m+j])
		}
		pi := float64(ones) / float64(m)
		chi2 += (pi - 0.5) * (pi - 0.5)
	}
	chi2 *= 4 * float64(m)
	p, err := igamc(float64(nBlocks)/2, chi2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("M=%d", m), p), nil
}

// Runs implements the runs test: the number of runs of identical bits must
// be consistent with a random sequence.
func Runs(bits []byte) (Result, error) {
	const name = "runs"
	if err := validateBits(bits, 100, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	ones := 0
	for _, b := range bits {
		ones += int(b)
	}
	pi := float64(ones) / float64(n)
	if math.Abs(pi-0.5) >= 2/math.Sqrt(float64(n)) {
		// The prerequisite frequency test fails; the runs test p-value is
		// defined to be 0.
		return newResult(name, "frequency prerequisite failed", 0), nil
	}
	vn := 1
	for i := 1; i < n; i++ {
		if bits[i] != bits[i-1] {
			vn++
		}
	}
	num := math.Abs(float64(vn) - 2*float64(n)*pi*(1-pi))
	den := 2 * math.Sqrt(2*float64(n)) * pi * (1 - pi)
	p := erfc(num / den)
	return newResult(name, "", p), nil
}

// LongestRunOfOnes implements the longest-run-of-ones-in-a-block test with
// the block size prescribed by the stream length.
func LongestRunOfOnes(bits []byte) (Result, error) {
	const name = "longest_run_ones_in_a_block"
	if err := validateBits(bits, 128, name); err != nil {
		return Result{}, err
	}
	n := len(bits)
	var m int
	var vClasses []int
	var pi []float64
	switch {
	case n < 6272:
		m = 8
		vClasses = []int{1, 2, 3, 4}
		pi = []float64{0.2148, 0.3672, 0.2305, 0.1875}
	case n < 750000:
		m = 128
		vClasses = []int{4, 5, 6, 7, 8, 9}
		pi = []float64{0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124}
	default:
		m = 10000
		vClasses = []int{10, 11, 12, 13, 14, 15, 16}
		pi = []float64{0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727}
	}
	nBlocks := n / m
	counts := make([]int, len(vClasses))
	for i := 0; i < nBlocks; i++ {
		longest, run := 0, 0
		for j := 0; j < m; j++ {
			if bits[i*m+j] == 1 {
				run++
				if run > longest {
					longest = run
				}
			} else {
				run = 0
			}
		}
		idx := 0
		for idx < len(vClasses)-1 && longest > vClasses[idx] {
			idx++
		}
		if longest < vClasses[0] {
			idx = 0
		}
		counts[idx]++
	}
	chi2 := 0.0
	for i := range counts {
		expected := float64(nBlocks) * pi[i]
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
	}
	k := float64(len(vClasses) - 1)
	p, err := igamc(k/2, chi2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("M=%d", m), p), nil
}

// BinaryMatrixRank implements the binary matrix rank test over 32×32
// matrices.
func BinaryMatrixRank(bits []byte) (Result, error) {
	const name = "binary_matrix_rank"
	if err := validateBits(bits, 1024, name); err != nil {
		return Result{}, err
	}
	const rows, cols = 32, 32
	n := len(bits)
	nMatrices := n / (rows * cols)
	if nMatrices < 38 {
		return notApplicable(name, fmt.Sprintf("needs at least 38 matrices (38912 bits), have %d", nMatrices)), nil
	}
	full, fullMinus1, other := 0, 0, 0
	for m := 0; m < nMatrices; m++ {
		matrix := make([][]byte, rows)
		for r := 0; r < rows; r++ {
			start := m*rows*cols + r*cols
			matrix[r] = bits[start : start+cols]
		}
		switch binaryMatrixRank(matrix) {
		case rows:
			full++
		case rows - 1:
			fullMinus1++
		default:
			other++
		}
	}
	// Asymptotic probabilities for 32×32 random binary matrices.
	const pFull, pFullMinus1, pOther = 0.2888, 0.5776, 0.1336
	nm := float64(nMatrices)
	chi2 := (float64(full)-pFull*nm)*(float64(full)-pFull*nm)/(pFull*nm) +
		(float64(fullMinus1)-pFullMinus1*nm)*(float64(fullMinus1)-pFullMinus1*nm)/(pFullMinus1*nm) +
		(float64(other)-pOther*nm)*(float64(other)-pOther*nm)/(pOther*nm)
	p := math.Exp(-chi2 / 2)
	return newResult(name, fmt.Sprintf("matrices=%d", nMatrices), p), nil
}

// DFT implements the discrete Fourier transform (spectral) test. The stream
// is truncated to the largest power-of-two length so a radix-2 FFT applies;
// the statistic's expectations are computed for the truncated length.
func DFT(bits []byte) (Result, error) {
	const name = "dft"
	if err := validateBits(bits, 1000, name); err != nil {
		return Result{}, err
	}
	n := 1
	for n*2 <= len(bits) {
		n *= 2
	}
	re := make([]float64, n)
	im := make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = 2*float64(bits[i]) - 1
	}
	if err := fft(re, im); err != nil {
		return Result{}, err
	}
	threshold := math.Sqrt(math.Log(1/0.05) * float64(n))
	n0 := 0.95 * float64(n) / 2
	n1 := 0
	for i := 0; i < n/2; i++ {
		if math.Hypot(re[i], im[i]) < threshold {
			n1++
		}
	}
	d := (float64(n1) - n0) / math.Sqrt(float64(n)*0.95*0.05/4)
	p := erfc(math.Abs(d) / math.Sqrt2)
	return newResult(name, fmt.Sprintf("n=%d", n), p), nil
}

// DefaultNonOverlappingTemplates returns a representative set of length-9
// aperiodic templates used by the non-overlapping template matching test.
// The full NIST suite iterates 148 templates; this default keeps eight of
// them (the complete set can be generated with AperiodicTemplates).
func DefaultNonOverlappingTemplates() [][]byte {
	return [][]byte{
		{0, 0, 0, 0, 0, 0, 0, 0, 1},
		{0, 0, 0, 0, 0, 0, 0, 1, 1},
		{0, 0, 0, 0, 0, 1, 0, 1, 1},
		{0, 0, 0, 1, 0, 1, 0, 1, 1},
		{0, 0, 1, 0, 1, 0, 1, 1, 1},
		{0, 1, 0, 1, 1, 1, 1, 1, 1},
		{0, 1, 1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, 1, 1, 1, 1, 0},
	}
}

// AperiodicTemplates generates every aperiodic template of length m: the
// templates for which no proper shift of the template matches itself, the
// condition the NIST test requires.
func AperiodicTemplates(m int) ([][]byte, error) {
	if m < 2 || m > 16 {
		return nil, fmt.Errorf("nist: template length %d outside [2,16]", m)
	}
	var out [][]byte
	for v := 0; v < 1<<uint(m); v++ {
		tpl := make([]byte, m)
		for i := 0; i < m; i++ {
			tpl[i] = byte((v >> uint(m-1-i)) & 1)
		}
		if isAperiodic(tpl) {
			out = append(out, tpl)
		}
	}
	return out, nil
}

func isAperiodic(tpl []byte) bool {
	m := len(tpl)
	for shift := 1; shift < m; shift++ {
		match := true
		for i := 0; i+shift < m; i++ {
			if tpl[i] != tpl[i+shift] {
				match = false
				break
			}
		}
		if match {
			return false
		}
	}
	return true
}

// NonOverlappingTemplateMatching implements the non-overlapping template
// matching test over the supplied templates (DefaultNonOverlappingTemplates
// when nil). One p-value is produced per template; the headline p-value is
// the minimum.
func NonOverlappingTemplateMatching(bits []byte, templates [][]byte) (Result, error) {
	const name = "non_overlapping_template_matching"
	if err := validateBits(bits, 8*100, name); err != nil {
		return Result{}, err
	}
	if templates == nil {
		templates = DefaultNonOverlappingTemplates()
	}
	if len(templates) == 0 {
		return Result{}, fmt.Errorf("nist: %s: empty template list", name)
	}
	const nBlocks = 8
	n := len(bits)
	m := n / nBlocks
	var pvalues []float64
	for _, tpl := range templates {
		tl := len(tpl)
		if tl == 0 || tl > m/2 {
			return Result{}, fmt.Errorf("nist: %s: template length %d unusable for block size %d", name, tl, m)
		}
		mean := float64(m-tl+1) / math.Pow(2, float64(tl))
		variance := float64(m) * (1/math.Pow(2, float64(tl)) - float64(2*tl-1)/math.Pow(2, float64(2*tl)))
		chi2 := 0.0
		for b := 0; b < nBlocks; b++ {
			block := bits[b*m : (b+1)*m]
			w := 0
			for i := 0; i <= len(block)-tl; {
				match := true
				for j := 0; j < tl; j++ {
					if block[i+j] != tpl[j] {
						match = false
						break
					}
				}
				if match {
					w++
					i += tl
				} else {
					i++
				}
			}
			diff := float64(w) - mean
			chi2 += diff * diff / variance
		}
		p, err := igamc(float64(nBlocks)/2, chi2/2)
		if err != nil {
			return Result{}, err
		}
		pvalues = append(pvalues, p)
	}
	return newResult(name, fmt.Sprintf("templates=%d", len(templates)), pvalues...), nil
}

// OverlappingTemplateMatching implements the overlapping template matching
// test with the all-ones template of length 9.
func OverlappingTemplateMatching(bits []byte) (Result, error) {
	const name = "overlapping_template_matching"
	if err := validateBits(bits, 10*1032, name); err != nil {
		return Result{}, err
	}
	const m = 9
	const blockLen = 1032
	const k = 5
	pi := []float64{0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865}
	n := len(bits)
	nBlocks := n / blockLen
	counts := make([]int, k+1)
	for b := 0; b < nBlocks; b++ {
		block := bits[b*blockLen : (b+1)*blockLen]
		w := 0
		for i := 0; i <= len(block)-m; i++ {
			match := true
			for j := 0; j < m; j++ {
				if block[i+j] != 1 {
					match = false
					break
				}
			}
			if match {
				w++
			}
		}
		if w > k {
			w = k
		}
		counts[w]++
	}
	chi2 := 0.0
	for i := 0; i <= k; i++ {
		expected := float64(nBlocks) * pi[i]
		diff := float64(counts[i]) - expected
		chi2 += diff * diff / expected
	}
	p, err := igamc(float64(k)/2, chi2/2)
	if err != nil {
		return Result{}, err
	}
	return newResult(name, fmt.Sprintf("blocks=%d", nBlocks), p), nil
}
