// Package nist implements the NIST SP 800-22 statistical test suite for
// random and pseudorandom number generators: the fifteen tests the paper
// uses in Table 1 to validate that D-RaNGe's output is indistinguishable
// from true random data, together with the special functions they require
// (regularized incomplete gamma functions, the complementary error function,
// GF(2) matrix rank, a radix-2 FFT and the Berlekamp–Massey algorithm).
//
// Bitstreams are represented as one bit per byte (values 0 or 1), the format
// produced by entropy.BytesToBits and by the D-RaNGe TRNG's ReadBits.
package nist

import (
	"fmt"
	"math"
)

// igamc returns the regularized upper incomplete gamma function Q(a, x) =
// Γ(a, x) / Γ(a), following the classic Cephes decomposition into a series
// expansion (x < a+1) and a continued fraction (x ≥ a+1).
func igamc(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, fmt.Errorf("nist: igamc domain error (a=%v, x=%v)", a, x)
	}
	if x == 0 {
		return 1, nil
	}
	if x < a+1 {
		p, err := igamSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return igamcContinuedFraction(a, x)
}

// igam returns the regularized lower incomplete gamma function P(a, x).
func igam(a, x float64) (float64, error) {
	q, err := igamc(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// igamSeries evaluates P(a, x) by its power series; accurate for x < a+1.
func igamSeries(a, x float64) (float64, error) {
	const maxIter = 1000
	const eps = 1e-15
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("nist: igam series failed to converge (a=%v, x=%v)", a, x)
}

// igamcContinuedFraction evaluates Q(a, x) by its continued fraction;
// accurate for x ≥ a+1.
func igamcContinuedFraction(a, x float64) (float64, error) {
	const maxIter = 1000
	const eps = 1e-15
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("nist: igamc continued fraction failed to converge (a=%v, x=%v)", a, x)
}

// erfc is the complementary error function.
func erfc(x float64) float64 {
	return math.Erfc(x)
}

// stdNormalCDF is the standard normal cumulative distribution function.
func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// fft computes the in-place radix-2 decimation-in-time FFT of the complex
// sequence (re, im). The length must be a power of two.
func fft(re, im []float64) error {
	n := len(re)
	if n != len(im) {
		return fmt.Errorf("nist: fft length mismatch (%d vs %d)", n, len(im))
	}
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("nist: fft length %d is not a power of two", n)
	}
	// Bit reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wRe, wIm := math.Cos(ang), math.Sin(ang)
		for i := 0; i < n; i += length {
			curRe, curIm := 1.0, 0.0
			for j := 0; j < length/2; j++ {
				uRe, uIm := re[i+j], im[i+j]
				vRe := re[i+j+length/2]*curRe - im[i+j+length/2]*curIm
				vIm := re[i+j+length/2]*curIm + im[i+j+length/2]*curRe
				re[i+j], im[i+j] = uRe+vRe, uIm+vIm
				re[i+j+length/2], im[i+j+length/2] = uRe-vRe, uIm-vIm
				curRe, curIm = curRe*wRe-curIm*wIm, curRe*wIm+curIm*wRe
			}
		}
	}
	return nil
}

// binaryMatrixRank computes the rank over GF(2) of an m×q matrix given as
// rows of bits (one byte per bit).
func binaryMatrixRank(rows [][]byte) int {
	if len(rows) == 0 {
		return 0
	}
	m := len(rows)
	q := len(rows[0])
	// Work on a copy to avoid mutating the caller's data.
	mat := make([][]byte, m)
	for i := range rows {
		mat[i] = append([]byte(nil), rows[i]...)
	}
	rank := 0
	for col := 0; col < q && rank < m; col++ {
		pivot := -1
		for r := rank; r < m; r++ {
			if mat[r][col] == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		mat[rank], mat[pivot] = mat[pivot], mat[rank]
		for r := 0; r < m; r++ {
			if r != rank && mat[r][col] == 1 {
				for c := col; c < q; c++ {
					mat[r][c] ^= mat[rank][c]
				}
			}
		}
		rank++
	}
	return rank
}

// berlekampMassey returns the linear complexity of the bit sequence: the
// length of the shortest LFSR that generates it.
func berlekampMassey(s []byte) int {
	n := len(s)
	c := make([]byte, n)
	b := make([]byte, n)
	if n == 0 {
		return 0
	}
	c[0], b[0] = 1, 1
	l, m := 0, -1
	for i := 0; i < n; i++ {
		d := s[i]
		for j := 1; j <= l; j++ {
			d ^= c[j] & s[i-j]
		}
		if d == 1 {
			t := append([]byte(nil), c...)
			for j := 0; j+i-m < n; j++ {
				c[j+i-m] ^= b[j]
			}
			if l <= i/2 {
				l = i + 1 - l
				m = i
				b = t
			}
		}
	}
	return l
}
