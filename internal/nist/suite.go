package nist

import (
	"errors"
	"fmt"
	"math"
)

// MinSuiteBits is the smallest bitstream RunAll accepts: the minimum stream
// length of the least demanding test (monobit). Shorter streams return
// ErrInsufficientData.
const MinSuiteBits = 100

// SuiteResult is the outcome of running the full test suite over one
// bitstream.
type SuiteResult struct {
	Alpha   float64
	Bits    int
	Results []Result
}

// AllPass reports whether every applicable test passed and at least one test
// was applicable.
func (s SuiteResult) AllPass() bool {
	applicable := 0
	for _, r := range s.Results {
		if !r.Applicable {
			continue
		}
		applicable++
		if !r.Pass {
			return false
		}
	}
	return applicable > 0
}

// Passed returns the number of applicable tests that passed and the number
// of applicable tests overall.
func (s SuiteResult) Passed() (passed, applicable int) {
	for _, r := range s.Results {
		if !r.Applicable {
			continue
		}
		applicable++
		if r.Pass {
			passed++
		}
	}
	return passed, applicable
}

// Lookup returns the result of the named test.
func (s SuiteResult) Lookup(name string) (Result, error) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, nil
		}
	}
	return Result{}, fmt.Errorf("nist: no result named %q", name)
}

// TestNames lists the fifteen tests in the order Table 1 of the paper
// reports them.
func TestNames() []string {
	return []string{
		"monobit",
		"frequency_within_block",
		"runs",
		"longest_run_ones_in_a_block",
		"binary_matrix_rank",
		"dft",
		"non_overlapping_template_matching",
		"overlapping_template_matching",
		"maurers_universal",
		"linear_complexity",
		"serial",
		"approximate_entropy",
		"cumulative_sums",
		"random_excursion",
		"random_excursion_variant",
	}
}

// RunAll runs the full fifteen-test suite over the bitstream (one bit per
// byte) at significance level alpha, in the order of Table 1. Tests whose
// minimum stream-length requirements are not met are reported as not
// applicable rather than failing. A stream too short for even the least
// demanding test (fewer than MinSuiteBits bits) returns an error matching
// ErrInsufficientData, so streaming callers can distinguish "not enough bits
// yet" from a genuine failure.
func RunAll(bits []byte, alpha float64) (SuiteResult, error) {
	if alpha <= 0 || alpha >= 1 {
		return SuiteResult{}, fmt.Errorf("nist: alpha %v outside (0,1)", alpha)
	}
	if len(bits) < MinSuiteBits {
		return SuiteResult{}, fmt.Errorf("nist: suite requires at least %d bits, got %d: %w", MinSuiteBits, len(bits), ErrInsufficientData)
	}
	type runner func([]byte) (Result, error)
	runners := []runner{
		Monobit,
		FrequencyWithinBlock,
		Runs,
		LongestRunOfOnes,
		BinaryMatrixRank,
		DFT,
		func(b []byte) (Result, error) { return NonOverlappingTemplateMatching(b, nil) },
		OverlappingTemplateMatching,
		MaurersUniversal,
		LinearComplexity,
		Serial,
		ApproximateEntropy,
		CumulativeSums,
		RandomExcursion,
		RandomExcursionVariant,
	}
	out := SuiteResult{Alpha: alpha, Bits: len(bits)}
	for i, run := range runners {
		r, err := run(bits)
		if err != nil {
			// A stream long enough for some tests but not this one is "not
			// applicable", matching the documented suite semantics; every
			// other error aborts the suite.
			if !errors.Is(err, ErrInsufficientData) {
				return SuiteResult{}, fmt.Errorf("nist: %s: %w", TestNames()[i], err)
			}
			r = notApplicable(TestNames()[i], err.Error())
		}
		r.Evaluate(alpha)
		out.Results = append(out.Results, r)
	}
	return out, nil
}

// ProportionBounds returns the acceptable range of the proportion of
// sequences passing a test, given the significance level and the number of
// tested sequences k: (1-α) ± 3·sqrt(α(1-α)/k), the interval the paper uses
// to argue that all 236 bitstreams passing is statistically acceptable.
func ProportionBounds(alpha float64, k int) (lo, hi float64, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, fmt.Errorf("nist: alpha %v outside (0,1)", alpha)
	}
	if k <= 0 {
		return 0, 0, fmt.Errorf("nist: sequence count must be positive, got %d", k)
	}
	center := 1 - alpha
	margin := 3 * math.Sqrt(alpha*(1-alpha)/float64(k))
	lo, hi = center-margin, center+margin
	if hi > 1 {
		hi = 1
	}
	if lo < 0 {
		lo = 0
	}
	return lo, hi, nil
}
