package nist

import (
	"math"
	"testing"
)

// prngBits produces a pseudorandom bitstream from a xorshift generator —
// statistically random enough to pass the suite, and fast to generate.
func prngBits(n int, seed uint64) []byte {
	bits := make([]byte, n)
	s := seed | 1
	for i := 0; i < n; {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		for b := 0; b < 64 && i < n; b++ {
			bits[i] = byte((s >> uint(b)) & 1)
			i++
		}
	}
	return bits
}

func constantBits(n int, v byte) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = v
	}
	return bits
}

func alternatingBits(n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(i & 1)
	}
	return bits
}

// sp80022Example is the 100-bit example sequence used throughout the NIST
// SP 800-22 documentation (the binary expansion of π).
func sp80022Example() []byte {
	s := "1100100100001111110110101010001000100001011010001100001000110100110001001100011001100010100010111000"
	bits := make([]byte, len(s))
	for i := range s {
		bits[i] = s[i] - '0'
	}
	return bits
}

func TestMonobitKnownAnswer(t *testing.T) {
	r, err := Monobit(sp80022Example())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PValue-0.109599) > 1e-4 {
		t.Errorf("monobit p-value = %v, want 0.109599 (SP 800-22 example)", r.PValue)
	}
}

func TestRunsKnownAnswer(t *testing.T) {
	r, err := Runs(sp80022Example())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.PValue-0.500798) > 1e-4 {
		t.Errorf("runs p-value = %v, want 0.500798 (SP 800-22 example)", r.PValue)
	}
}

func TestCumulativeSumsKnownAnswer(t *testing.T) {
	r, err := CumulativeSums(sp80022Example())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PValues) != 2 {
		t.Fatalf("cusum should produce 2 p-values, got %d", len(r.PValues))
	}
	if math.Abs(r.PValues[0]-0.219194) > 1e-3 {
		t.Errorf("forward cusum p-value = %v, want 0.219194 (SP 800-22 example)", r.PValues[0])
	}
}

func TestBasicTestsRejectConstantStream(t *testing.T) {
	bits := constantBits(20000, 1)
	type namedTest struct {
		name string
		run  func([]byte) (Result, error)
	}
	for _, tc := range []namedTest{
		{"monobit", Monobit},
		{"block frequency", FrequencyWithinBlock},
		{"runs", Runs},
		{"longest run", LongestRunOfOnes},
		{"cusum", CumulativeSums},
		{"approximate entropy", ApproximateEntropy},
		{"serial", Serial},
	} {
		r, err := tc.run(bits)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		r.Evaluate(DefaultAlpha)
		if r.Pass {
			t.Errorf("%s passed an all-ones stream", tc.name)
		}
	}
}

func TestRunsRejectsAlternatingStream(t *testing.T) {
	r, err := Runs(alternatingBits(20000))
	if err != nil {
		t.Fatal(err)
	}
	r.Evaluate(DefaultAlpha)
	if r.Pass {
		t.Error("runs test passed a perfectly alternating stream")
	}
	s, err := Serial(alternatingBits(20000))
	if err != nil {
		t.Fatal(err)
	}
	s.Evaluate(DefaultAlpha)
	if s.Pass {
		t.Error("serial test passed a perfectly alternating stream")
	}
}

func TestIndividualTestsAcceptPseudorandomStream(t *testing.T) {
	bits := prngBits(60000, 0x1234567)
	for _, tc := range []struct {
		name string
		run  func([]byte) (Result, error)
	}{
		{"monobit", Monobit},
		{"block frequency", FrequencyWithinBlock},
		{"runs", Runs},
		{"longest run", LongestRunOfOnes},
		{"matrix rank", BinaryMatrixRank},
		{"dft", DFT},
		{"non-overlapping", func(b []byte) (Result, error) { return NonOverlappingTemplateMatching(b, nil) }},
		{"overlapping", OverlappingTemplateMatching},
		{"serial", Serial},
		{"approximate entropy", ApproximateEntropy},
		{"cusum", CumulativeSums},
	} {
		r, err := tc.run(bits)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !r.Applicable {
			t.Errorf("%s reported not applicable for 60k bits: %s", tc.name, r.Detail)
			continue
		}
		r.Evaluate(DefaultAlpha)
		if !r.Pass {
			t.Errorf("%s rejected a pseudorandom stream (p=%v)", tc.name, r.PValue)
		}
	}
}

func TestTestsRejectTooShortStreams(t *testing.T) {
	short := prngBits(10, 1)
	for _, run := range []func([]byte) (Result, error){
		Monobit, FrequencyWithinBlock, Runs, LongestRunOfOnes, BinaryMatrixRank, DFT,
		OverlappingTemplateMatching, Serial, ApproximateEntropy, CumulativeSums,
		RandomExcursion, RandomExcursionVariant, MaurersUniversal, LinearComplexity,
	} {
		if _, err := run(short); err == nil {
			t.Error("a test accepted a 10-bit stream")
		}
	}
}

func TestTestsRejectInvalidBitValues(t *testing.T) {
	bad := prngBits(5000, 3)
	bad[100] = 7
	if _, err := Monobit(bad); err == nil {
		t.Error("bit value 7 accepted")
	}
}

func TestNotApplicableResults(t *testing.T) {
	bits := prngBits(20000, 9)
	m, err := MaurersUniversal(bits)
	if err != nil {
		t.Fatal(err)
	}
	if m.Applicable {
		t.Error("Maurer's test should not be applicable to 20k bits")
	}
	lc, err := LinearComplexity(prngBits(2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if lc.Applicable {
		t.Error("linear complexity should not be applicable to 2k bits")
	}
	re, err := RandomExcursion(prngBits(2000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if re.Applicable {
		t.Error("random excursions should not be applicable with so few cycles")
	}
	m.Evaluate(DefaultAlpha)
	if m.Pass {
		t.Error("inapplicable result must not report Pass")
	}
}

func TestNonOverlappingTemplateValidation(t *testing.T) {
	bits := prngBits(10000, 5)
	if _, err := NonOverlappingTemplateMatching(bits, [][]byte{}); err == nil {
		t.Error("empty template list accepted")
	}
	long := make([]byte, 5000)
	if _, err := NonOverlappingTemplateMatching(bits, [][]byte{long}); err == nil {
		t.Error("template longer than half a block accepted")
	}
}

func TestResultEvaluateAndString(t *testing.T) {
	r := newResult("demo", "", 0.5, 0.0005)
	r.Evaluate(DefaultAlpha)
	if !r.Pass {
		t.Error("p-values above alpha should pass")
	}
	if r.PValue != 0.0005 {
		t.Errorf("headline p-value should be the minimum, got %v", r.PValue)
	}
	r2 := newResult("demo", "", 0.5, 0.000001)
	r2.Evaluate(DefaultAlpha)
	if r2.Pass {
		t.Error("a p-value below alpha should fail")
	}
	if r.String() == "" || notApplicable("x", "y").String() == "" {
		t.Error("String() should be non-empty")
	}
	clamped := newResult("demo", "", -0.5, 1.5)
	if clamped.PValues[0] != 0 || clamped.PValues[1] != 1 {
		t.Errorf("p-values not clamped: %v", clamped.PValues)
	}
}

func TestSerialBlockLength(t *testing.T) {
	if got := serialBlockLength(100); got < 2 || got > 5 {
		t.Errorf("serialBlockLength(100) = %d, want within [2,5]", got)
	}
	if got := serialBlockLength(1 << 20); got != 5 {
		t.Errorf("serialBlockLength(1M) = %d, want 5", got)
	}
}

func TestProportionBounds(t *testing.T) {
	lo, hi, err := ProportionBounds(DefaultAlpha, 236)
	if err != nil {
		t.Fatal(err)
	}
	// The paper quotes the acceptable range [0.998, 1] for 236 sequences at
	// α = 0.0001.
	if lo < 0.997 || lo > 0.999 || hi != 1 {
		t.Errorf("ProportionBounds = [%v, %v], want about [0.998, 1]", lo, hi)
	}
	if _, _, err := ProportionBounds(0, 10); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, _, err := ProportionBounds(0.5, 0); err == nil {
		t.Error("zero sequences accepted")
	}
}
