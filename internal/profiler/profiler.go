// Package profiler implements the paper's characterization methodology:
// Algorithm 1 (inducing activation failures over a DRAM region with a
// reduced tRCD), and the Section 5 experiments built on it — the spatial
// distribution of failures (Figure 4), data-pattern dependence (Figure 5),
// temperature effects (Figure 6), failure-probability stability over time
// (Section 5.4), and the tRCD sweep used as an ablation.
package profiler

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/pattern"
)

// Region is a rectangular region of one bank under test: a range of rows and
// a range of DRAM words within each row.
type Region struct {
	Bank      int
	RowStart  int
	RowCount  int
	WordStart int
	WordCount int
}

// Validate checks the region against the geometry of the controller's
// device.
func (r Region) Validate(ctrl *memctrl.Controller) error {
	g := ctrl.Device().Geometry()
	if r.Bank < 0 || r.Bank >= g.Banks {
		return fmt.Errorf("profiler: bank %d out of range [0,%d)", r.Bank, g.Banks)
	}
	if r.RowCount <= 0 || r.WordCount <= 0 {
		return fmt.Errorf("profiler: region must span at least one row and one word")
	}
	if r.RowStart < 0 || r.RowStart+r.RowCount > g.RowsPerBank {
		return fmt.Errorf("profiler: rows [%d,%d) outside bank of %d rows", r.RowStart, r.RowStart+r.RowCount, g.RowsPerBank)
	}
	if r.WordStart < 0 || r.WordStart+r.WordCount > g.WordsPerRow() {
		return fmt.Errorf("profiler: words [%d,%d) outside row of %d words", r.WordStart, r.WordStart+r.WordCount, g.WordsPerRow())
	}
	return nil
}

// Cells returns the number of cells in the region.
func (r Region) Cells(wordBits int) int {
	return r.RowCount * r.WordCount * wordBits
}

// WholeBank returns a region covering all of the given bank.
func WholeBank(ctrl *memctrl.Controller, bank int) Region {
	g := ctrl.Device().Geometry()
	return Region{Bank: bank, RowStart: 0, RowCount: g.RowsPerBank, WordStart: 0, WordCount: g.WordsPerRow()}
}

// CellAddr identifies one DRAM cell.
type CellAddr struct {
	Bank int
	Row  int
	Col  int
}

// FailureProfile is the result of running Algorithm 1 over a region: how
// many times each cell failed out of the number of test iterations.
type FailureProfile struct {
	Region     Region
	Pattern    pattern.Pattern
	TRCDNS     float64
	Iterations int
	// Counts maps each cell that failed at least once to its failure count.
	Counts map[CellAddr]int
}

// Fprob returns the observed activation-failure probability of the cell.
func (f *FailureProfile) Fprob(c CellAddr) float64 {
	if f.Iterations == 0 {
		return 0
	}
	return float64(f.Counts[c]) / float64(f.Iterations)
}

// FailedCells returns every cell that failed at least once.
func (f *FailureProfile) FailedCells() []CellAddr {
	out := make([]CellAddr, 0, len(f.Counts))
	for c := range f.Counts {
		out = append(out, c)
	}
	return out
}

// CellsWithFprobBetween returns the cells whose observed failure probability
// lies in [lo, hi].
func (f *FailureProfile) CellsWithFprobBetween(lo, hi float64) []CellAddr {
	var out []CellAddr
	for c := range f.Counts {
		p := f.Fprob(c)
		if p >= lo && p <= hi {
			out = append(out, c)
		}
	}
	return out
}

// TotalFailures returns the total number of failure events observed.
func (f *FailureProfile) TotalFailures() int {
	total := 0
	for _, n := range f.Counts {
		total += n
	}
	return total
}

// Config controls a run of Algorithm 1.
type Config struct {
	// TRCDNS is the reduced activation latency used to induce failures. The
	// paper uses 10 ns (default 18 ns) for its characterization.
	TRCDNS float64
	// Iterations is the number of times each word is tested (100 in most of
	// the paper's experiments, 1000 for RNG-cell identification).
	Iterations int
	// Pattern is the data pattern written to the region before testing.
	Pattern pattern.Pattern
}

// DefaultConfig returns the paper's standard characterization configuration:
// tRCD reduced to 10 ns, 100 iterations, solid-0s data pattern.
func DefaultConfig() Config {
	return Config{TRCDNS: 10.0, Iterations: 100, Pattern: pattern.Solid0()}
}

func (c Config) validate(ctrl *memctrl.Controller) error {
	if c.TRCDNS <= 0 || c.TRCDNS > ctrl.Params().TRCD {
		return fmt.Errorf("profiler: tRCD %v ns outside (0, %v]", c.TRCDNS, ctrl.Params().TRCD)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("profiler: iterations must be positive, got %d", c.Iterations)
	}
	return nil
}

// WritePattern fills the region (and one guard row above and below it, so
// neighbour coupling sees the pattern too) with the data pattern.
func WritePattern(ctrl *memctrl.Controller, region Region, pat pattern.Pattern) error {
	if err := region.Validate(ctrl); err != nil {
		return err
	}
	dev := ctrl.Device()
	g := dev.Geometry()
	rowStart := region.RowStart - 1
	if rowStart < 0 {
		rowStart = 0
	}
	rowEnd := region.RowStart + region.RowCount + 1
	if rowEnd > g.RowsPerBank {
		rowEnd = g.RowsPerBank
	}
	for row := rowStart; row < rowEnd; row++ {
		data, err := pat.FillRow(row, g.ColsPerRow)
		if err != nil {
			return err
		}
		if err := dev.WriteRow(region.Bank, row, data); err != nil {
			return err
		}
	}
	return nil
}

// Run implements Algorithm 1 of the paper. It writes the data pattern to the
// region, programs the reduced tRCD, and then, for every word of every row
// (column-major, so each access goes to a closed row), refreshes the row,
// activates it with the reduced latency, reads the word, records any
// failures, and restores the pattern so the next iteration tests the same
// stored data. The controller's default tRCD is restored before returning.
func Run(ctrl *memctrl.Controller, region Region, cfg Config) (*FailureProfile, error) {
	if err := region.Validate(ctrl); err != nil {
		return nil, err
	}
	if err := cfg.validate(ctrl); err != nil {
		return nil, err
	}
	if err := WritePattern(ctrl, region, cfg.Pattern); err != nil {
		return nil, err
	}

	g := ctrl.Device().Geometry()
	wordU64s := g.WordBits / 64
	profile := &FailureProfile{
		Region:     region,
		Pattern:    cfg.Pattern,
		TRCDNS:     cfg.TRCDNS,
		Iterations: cfg.Iterations,
		Counts:     make(map[CellAddr]int),
	}

	// Precompute the expected word content per row (pattern only depends on
	// row parity and column, but FillRow is cheap enough to reuse per row).
	expectedRow := func(row int) ([]uint64, error) {
		return cfg.Pattern.FillRow(row, g.ColsPerRow)
	}

	if err := ctrl.SetReducedTRCD(cfg.TRCDNS); err != nil {
		return nil, err
	}
	defer ctrl.ResetTRCD()

	for it := 0; it < cfg.Iterations; it++ {
		for w := region.WordStart; w < region.WordStart+region.WordCount; w++ {
			for row := region.RowStart; row < region.RowStart+region.RowCount; row++ {
				expected, err := expectedRow(row)
				if err != nil {
					return nil, err
				}
				expWord := expected[w*wordU64s : (w+1)*wordU64s]

				// Lines 6-7: fully refresh the row so every iteration starts
				// from the same charge state.
				if err := ctrl.RefreshRow(region.Bank, row); err != nil {
					return nil, err
				}
				// Lines 8-10: activate with reduced tRCD, read the word,
				// precharge.
				got, _, err := ctrl.ReadWord(region.Bank, row, w)
				if err != nil {
					return nil, err
				}
				// Line 11: record activation failures.
				dirty := false
				for u := 0; u < wordU64s; u++ {
					diff := got[u] ^ expWord[u]
					if diff == 0 {
						continue
					}
					dirty = true
					for bit := 0; bit < 64; bit++ {
						if diff&(1<<uint(bit)) != 0 {
							col := w*g.WordBits + u*64 + bit
							profile.Counts[CellAddr{Bank: region.Bank, Row: row, Col: col}]++
						}
					}
				}
				// Restore the pattern so subsequent iterations test the same
				// stored data (activation failures are written back into the
				// array by the sense amplifiers).
				if dirty {
					if _, err := ctrl.WriteWord(region.Bank, row, w, expWord); err != nil {
						return nil, err
					}
				}
				if err := ctrl.PrechargeBank(region.Bank); err != nil {
					return nil, err
				}
			}
		}
	}
	return profile, nil
}
