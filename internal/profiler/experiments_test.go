package profiler

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/pattern"
)

func TestSpatialDistributionShowsWeakColumnStructure(t *testing.T) {
	ctrl := newTestController(t, 11, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 10
	m, err := SpatialDistribution(ctrl, 0, 96, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Failed) != 96 || len(m.Failed[0]) != 1024 {
		t.Fatalf("bitmap is %dx%d, want 96x1024", len(m.Failed), len(m.Failed[0]))
	}
	cols := m.FailingColumns()
	if len(cols) == 0 {
		t.Fatal("no failing columns found")
	}
	// Failures must be concentrated in a small set of columns (the weak
	// local bitlines), far fewer than the number of columns tested.
	if len(cols) > 1024/4 {
		t.Errorf("failures spread over %d/1024 columns; expected clustering on weak columns", len(cols))
	}
	// Every failing cell must lie on one of the failing columns by
	// construction; check marginals are consistent.
	totalByRow, totalByCol := 0, 0
	for _, n := range m.FailuresPerRow {
		totalByRow += n
	}
	for _, n := range m.FailuresPerColumn {
		totalByCol += n
	}
	if totalByRow != totalByCol {
		t.Errorf("marginal totals disagree: %d vs %d", totalByRow, totalByCol)
	}
}

func TestSpatialDistributionRowGradient(t *testing.T) {
	// Within one subarray, higher-numbered rows should on aggregate fail
	// more than lower-numbered rows (Figure 4's second observation). Use a
	// single subarray worth of rows.
	ctrl := newTestController(t, 12, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 15
	m, err := SpatialDistribution(ctrl, 0, 64, 2048, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper := 0, 0
	for r := 0; r < 32; r++ {
		lower += m.FailuresPerRow[r]
	}
	for r := 32; r < 64; r++ {
		upper += m.FailuresPerRow[r]
	}
	if upper <= lower {
		t.Errorf("upper half of the subarray failed %d cells, lower half %d; expected more failures further from the sense amplifiers", upper, lower)
	}
}

func TestSpatialDistributionValidation(t *testing.T) {
	ctrl := newTestController(t, 13, dram.ManufacturerA)
	if _, err := SpatialDistribution(ctrl, 0, 16, 100, smallConfig()); err == nil {
		t.Error("cols not a multiple of word size accepted")
	}
}

func TestDataPatternDependence(t *testing.T) {
	ctrl := newTestController(t, 14, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 10
	pats := []pattern.Pattern{pattern.Solid0(), pattern.Solid1(), pattern.Checkered0(), pattern.Checkered1()}
	cov, err := DataPatternDependence(ctrl, smallRegion(), pats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov) != len(pats) {
		t.Fatalf("got %d coverages, want %d", len(cov), len(pats))
	}
	maxCov := 0.0
	for _, c := range cov {
		if c.Coverage < 0 || c.Coverage > 1 {
			t.Errorf("%v coverage %v outside [0,1]", c.Pattern, c.Coverage)
		}
		if c.Coverage > maxCov {
			maxCov = c.Coverage
		}
	}
	if maxCov == 0 {
		t.Fatal("no pattern discovered any failures")
	}
	// For manufacturer A (true-cell dominated) solid 0s must discover more
	// failure-prone cells than solid 1s.
	var solid0, solid1 PatternCoverage
	for _, c := range cov {
		switch c.Pattern {
		case pattern.Solid0():
			solid0 = c
		case pattern.Solid1():
			solid1 = c
		}
	}
	if solid0.Failures <= solid1.Failures {
		t.Errorf("manufacturer A: SOLID0 found %d cells, SOLID1 found %d; expected SOLID0 to dominate", solid0.Failures, solid1.Failures)
	}

	best, err := BestPatternByMidProbCells(cov)
	if err != nil {
		t.Fatal(err)
	}
	if best.MidProbCells < 0 {
		t.Error("negative mid-probability cell count")
	}
}

func TestDataPatternDependenceValidation(t *testing.T) {
	ctrl := newTestController(t, 15, dram.ManufacturerA)
	if _, err := DataPatternDependence(ctrl, smallRegion(), nil, smallConfig()); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := BestPatternByMidProbCells(nil); err == nil {
		t.Error("empty coverage list accepted")
	}
}

func TestTemperatureSweepIncreasesFailureProbability(t *testing.T) {
	ctrl := newTestController(t, 16, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 25
	region := Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
	res, err := TemperatureSweep(ctrl, region, cfg, 55, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("temperature sweep found no failure-prone cells")
	}
	if res.IncreasedFraction <= res.DecreasedFraction {
		t.Errorf("increased fraction %.2f should exceed decreased fraction %.2f at +5 °C", res.IncreasedFraction, res.DecreasedFraction)
	}
	if res.DecreasedFraction >= 0.5 {
		t.Errorf("decreased fraction = %.2f; the paper observes fewer than 25%% of points decreasing", res.DecreasedFraction)
	}
	if res.DeltaSummary.Median < 0 {
		t.Errorf("median ΔFprob = %v, expected non-negative", res.DeltaSummary.Median)
	}
	// The device temperature must be restored.
	if ctrl.Device().Temperature() != 55 {
		t.Errorf("device temperature left at %v, want 55", ctrl.Device().Temperature())
	}
}

func TestTemperatureSweepValidation(t *testing.T) {
	ctrl := newTestController(t, 17, dram.ManufacturerA)
	if _, err := TemperatureSweep(ctrl, smallRegion(), smallConfig(), 55, 0); err == nil {
		t.Error("zero temperature step accepted")
	}
	if _, err := TemperatureSweep(ctrl, smallRegion(), smallConfig(), 500, 5); err == nil {
		t.Error("implausible base temperature accepted")
	}
}

func TestTimeStability(t *testing.T) {
	ctrl := newTestController(t, 18, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 30
	res, err := TimeStability(ctrl, smallRegion(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", res.Rounds)
	}
	if len(res.MeanFprobPerCell) == 0 {
		t.Fatal("no cells tracked across rounds")
	}
	// The model's process variation is fixed at manufacturing time, so
	// failure probabilities should be stable: sampling noise only. With 30
	// iterations per round the drift should stay well below 0.5.
	if res.WorstDrift > 0.45 {
		t.Errorf("worst per-cell Fprob drift = %v; expected stability over rounds", res.WorstDrift)
	}
	if _, err := TimeStability(ctrl, smallRegion(), cfg, 1); err == nil {
		t.Error("single round accepted")
	}
}

func TestTRCDSweep(t *testing.T) {
	ctrl := newTestController(t, 19, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.Iterations = 10
	points, err := TRCDSweep(ctrl, smallRegion(), cfg, []float64{6, 8, 10, 13, 18})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	// Failures must be plentiful at 6-8 ns, present around 10-13 ns, and
	// absent at the default 18 ns.
	if points[0].FailingCells == 0 {
		t.Error("no failures at tRCD=6 ns")
	}
	if points[len(points)-1].FailingCells != 0 {
		t.Errorf("%d failures at the default tRCD=18 ns, want 0", points[len(points)-1].FailingCells)
	}
	if points[0].FailingCells < points[2].FailingCells {
		t.Errorf("failures at 6 ns (%d) should be at least failures at 10 ns (%d)", points[0].FailingCells, points[2].FailingCells)
	}
	if _, err := TRCDSweep(ctrl, smallRegion(), cfg, nil); err == nil {
		t.Error("empty tRCD list accepted")
	}
}
