package profiler

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pattern"
)

// testGeometry is a deliberately small device so characterization unit tests
// run in milliseconds.
func testGeometry() dram.Geometry {
	return dram.Geometry{
		Banks:        2,
		RowsPerBank:  128,
		ColsPerRow:   2048,
		SubarrayRows: 64,
		WordBits:     256,
	}
}

// testProfile boosts the weak-column density so that small test regions
// contain enough failure-prone cells to characterize.
func testProfile(m dram.Manufacturer) dram.Profile {
	p := dram.MustProfile(m)
	p.WeakColumnDensity = 1.0 / 16.0
	p.SubarrayRows = 64
	return p
}

func newTestController(t *testing.T, seed uint64, m dram.Manufacturer) *memctrl.Controller {
	t.Helper()
	prof := testProfile(m)
	dev, err := dram.NewDevice(dram.Config{
		Serial:   seed,
		Profile:  &prof,
		Geometry: testGeometry(),
		Noise:    dram.NewDeterministicNoise(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	return memctrl.NewController(dev)
}

func smallRegion() Region {
	return Region{Bank: 0, RowStart: 0, RowCount: 48, WordStart: 0, WordCount: 4}
}

func smallConfig() Config {
	return Config{TRCDNS: 10.0, Iterations: 20, Pattern: pattern.Solid0()}
}

func TestRegionValidate(t *testing.T) {
	ctrl := newTestController(t, 1, dram.ManufacturerA)
	good := smallRegion()
	if err := good.Validate(ctrl); err != nil {
		t.Errorf("valid region rejected: %v", err)
	}
	cases := []Region{
		{Bank: -1, RowCount: 1, WordCount: 1},
		{Bank: 99, RowCount: 1, WordCount: 1},
		{Bank: 0, RowCount: 0, WordCount: 1},
		{Bank: 0, RowCount: 1, WordCount: 0},
		{Bank: 0, RowStart: 120, RowCount: 100, WordCount: 1},
		{Bank: 0, RowCount: 1, WordStart: 7, WordCount: 10},
	}
	for i, r := range cases {
		if err := r.Validate(ctrl); err == nil {
			t.Errorf("invalid region %d accepted: %+v", i, r)
		}
	}
	if got := good.Cells(256); got != 48*4*256 {
		t.Errorf("Cells = %d, want %d", got, 48*4*256)
	}
	wb := WholeBank(ctrl, 1)
	if err := wb.Validate(ctrl); err != nil {
		t.Errorf("WholeBank region invalid: %v", err)
	}
	if wb.RowCount != 128 || wb.WordCount != 8 {
		t.Errorf("WholeBank = %+v", wb)
	}
}

func TestRunFindsFailures(t *testing.T) {
	ctrl := newTestController(t, 2, dram.ManufacturerA)
	prof, err := Run(ctrl, smallRegion(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Counts) == 0 {
		t.Fatal("no activation failures found at tRCD=10 ns over the test region")
	}
	if prof.TotalFailures() < len(prof.Counts) {
		t.Error("total failures must be at least the number of failing cells")
	}
	for _, c := range prof.FailedCells() {
		p := prof.Fprob(c)
		if p <= 0 || p > 1 {
			t.Errorf("cell %+v has Fprob %v outside (0,1]", c, p)
		}
		if c.Bank != 0 || c.Row >= 48 || c.Col >= 4*256 {
			t.Errorf("failure outside region: %+v", c)
		}
	}
	// The controller must be back at the default tRCD.
	if ctrl.EffectiveTRCD() != ctrl.Params().TRCD {
		t.Error("Run left the reduced tRCD programmed")
	}
}

func TestRunAtDefaultTRCDFindsNothing(t *testing.T) {
	ctrl := newTestController(t, 3, dram.ManufacturerA)
	cfg := smallConfig()
	cfg.TRCDNS = ctrl.Params().TRCD
	cfg.Iterations = 5
	prof, err := Run(ctrl, smallRegion(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Counts) != 0 {
		t.Errorf("found %d failing cells at the default tRCD, want 0", len(prof.Counts))
	}
}

func TestRunFailureCountsBoundedByIterations(t *testing.T) {
	ctrl := newTestController(t, 4, dram.ManufacturerA)
	cfg := smallConfig()
	prof, err := Run(ctrl, smallRegion(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, n := range prof.Counts {
		if n > cfg.Iterations {
			t.Errorf("cell %+v failed %d times out of %d iterations", c, n, cfg.Iterations)
		}
	}
}

func TestRunIsReproducibleAcrossRuns(t *testing.T) {
	// Two runs on devices with the same serial and same deterministic noise
	// seed must find the same set of failing cells (the paper's stability
	// observation in its strongest form).
	a, err := Run(newTestController(t, 5, dram.ManufacturerA), smallRegion(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(newTestController(t, 5, dram.ManufacturerA), smallRegion(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatalf("different failure-set sizes: %d vs %d", len(a.Counts), len(b.Counts))
	}
	for c, n := range a.Counts {
		if b.Counts[c] != n {
			t.Fatalf("cell %+v count %d vs %d", c, n, b.Counts[c])
		}
	}
}

func TestRunValidation(t *testing.T) {
	ctrl := newTestController(t, 6, dram.ManufacturerA)
	if _, err := Run(ctrl, Region{Bank: 99, RowCount: 1, WordCount: 1}, smallConfig()); err == nil {
		t.Error("bad region accepted")
	}
	cfg := smallConfig()
	cfg.Iterations = 0
	if _, err := Run(ctrl, smallRegion(), cfg); err == nil {
		t.Error("zero iterations accepted")
	}
	cfg = smallConfig()
	cfg.TRCDNS = 100
	if _, err := Run(ctrl, smallRegion(), cfg); err == nil {
		t.Error("tRCD above default accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TRCDNS != 10.0 {
		t.Errorf("default characterization tRCD = %v, want 10 ns", cfg.TRCDNS)
	}
	if cfg.Iterations != 100 {
		t.Errorf("default iterations = %d, want 100", cfg.Iterations)
	}
	if cfg.Pattern != pattern.Solid0() {
		t.Errorf("default pattern = %v, want SOLID0", cfg.Pattern)
	}
}

func TestWritePattern(t *testing.T) {
	ctrl := newTestController(t, 7, dram.ManufacturerA)
	region := smallRegion()
	if err := WritePattern(ctrl, region, pattern.Checkered1()); err != nil {
		t.Fatal(err)
	}
	raw, err := ctrl.Device().ReadRowRaw(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pattern.Checkered1().FillRow(3, ctrl.Device().Geometry().ColsPerRow)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if raw[i] != want[i] {
			t.Fatalf("row 3 word %d = %x, want %x", i, raw[i], want[i])
		}
	}
	if err := WritePattern(ctrl, Region{Bank: 99, RowCount: 1, WordCount: 1}, pattern.Solid0()); err == nil {
		t.Error("bad region accepted")
	}
}

func TestFprobProfileQueries(t *testing.T) {
	prof := &FailureProfile{Iterations: 100, Counts: map[CellAddr]int{
		{0, 1, 2}: 50,
		{0, 1, 3}: 10,
		{0, 2, 2}: 95,
	}}
	mid := prof.CellsWithFprobBetween(0.4, 0.6)
	if len(mid) != 1 || mid[0] != (CellAddr{0, 1, 2}) {
		t.Errorf("CellsWithFprobBetween = %v", mid)
	}
	if prof.Fprob(CellAddr{9, 9, 9}) != 0 {
		t.Error("Fprob of a never-failing cell should be 0")
	}
	empty := &FailureProfile{}
	if empty.Fprob(CellAddr{}) != 0 {
		t.Error("Fprob with zero iterations should be 0")
	}
	if prof.TotalFailures() != 155 {
		t.Errorf("TotalFailures = %d, want 155", prof.TotalFailures())
	}
}
