package profiler

import (
	"fmt"
	"sort"

	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/pattern"
)

// SpatialMap is the data behind Figure 4: for a window of rows × columns of
// one bank, which cells experienced at least one activation failure.
type SpatialMap struct {
	Region Region
	// Failed[r][c] is true when the cell at (RowStart+r, window column c)
	// failed at least once.
	Failed [][]bool
	// FailuresPerRow and FailuresPerColumn are marginal counts over the
	// window.
	FailuresPerRow    []int
	FailuresPerColumn []int
}

// SpatialDistribution runs Algorithm 1 over a rows × cols window of the bank
// (starting at row 0, word 0) and returns the failure bitmap, reproducing
// Figure 4. cols must be a multiple of the device's word size.
func SpatialDistribution(ctrl *memctrl.Controller, bank, rows, cols int, cfg Config) (*SpatialMap, error) {
	g := ctrl.Device().Geometry()
	if cols%g.WordBits != 0 {
		return nil, fmt.Errorf("profiler: cols (%d) must be a multiple of the word size (%d)", cols, g.WordBits)
	}
	region := Region{Bank: bank, RowStart: 0, RowCount: rows, WordStart: 0, WordCount: cols / g.WordBits}
	prof, err := Run(ctrl, region, cfg)
	if err != nil {
		return nil, err
	}
	m := &SpatialMap{
		Region:            region,
		Failed:            make([][]bool, rows),
		FailuresPerRow:    make([]int, rows),
		FailuresPerColumn: make([]int, cols),
	}
	for r := range m.Failed {
		m.Failed[r] = make([]bool, cols)
	}
	for c := range prof.Counts {
		r := c.Row - region.RowStart
		col := c.Col
		if r < 0 || r >= rows || col < 0 || col >= cols {
			continue
		}
		if !m.Failed[r][col] {
			m.Failed[r][col] = true
			m.FailuresPerRow[r]++
			m.FailuresPerColumn[col]++
		}
	}
	return m, nil
}

// FailingColumns returns the window columns that contain at least one
// failure-prone cell, in ascending order. Figure 4's observation is that
// these repeat across the rows of a subarray.
func (m *SpatialMap) FailingColumns() []int {
	var out []int
	for col, n := range m.FailuresPerColumn {
		if n > 0 {
			out = append(out, col)
		}
	}
	sort.Ints(out)
	return out
}

// PatternCoverage is one bar of Figure 5: the fraction of all
// failure-prone cells (union over every tested pattern) that a single data
// pattern discovers, plus the number of cells it finds in the ~50% failure
// probability band.
type PatternCoverage struct {
	Pattern  pattern.Pattern
	Failures int
	Coverage float64
	// MidProbCells is the number of cells with observed Fprob in [40%, 60%].
	MidProbCells int
}

// DataPatternDependence runs Algorithm 1 once per data pattern over the same
// region and reports each pattern's coverage of the union of failure-prone
// cells (Figure 5), along with the count of cells in the 40–60% failure
// probability band (the paper's criterion for identifying high-entropy
// cells, Section 5.2).
func DataPatternDependence(ctrl *memctrl.Controller, region Region, patterns []pattern.Pattern, cfg Config) ([]PatternCoverage, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("profiler: no patterns supplied")
	}
	union := make(map[CellAddr]bool)
	perPattern := make([]map[CellAddr]int, len(patterns))
	iterations := cfg.Iterations

	for i, pat := range patterns {
		c := cfg
		c.Pattern = pat
		prof, err := Run(ctrl, region, c)
		if err != nil {
			return nil, fmt.Errorf("profiler: pattern %v: %w", pat, err)
		}
		perPattern[i] = prof.Counts
		for cell := range prof.Counts {
			union[cell] = true
		}
	}

	out := make([]PatternCoverage, len(patterns))
	for i, pat := range patterns {
		cov := PatternCoverage{Pattern: pat, Failures: len(perPattern[i])}
		if len(union) > 0 {
			cov.Coverage = float64(len(perPattern[i])) / float64(len(union))
		}
		for _, n := range perPattern[i] {
			p := float64(n) / float64(iterations)
			if p >= 0.4 && p <= 0.6 {
				cov.MidProbCells++
			}
		}
		out[i] = cov
	}
	return out, nil
}

// BestPatternByMidProbCells returns the pattern that discovers the most
// cells with ~50% failure probability, the selection rule of Section 5.2.
func BestPatternByMidProbCells(coverages []PatternCoverage) (PatternCoverage, error) {
	if len(coverages) == 0 {
		return PatternCoverage{}, fmt.Errorf("profiler: empty coverage list")
	}
	best := coverages[0]
	for _, c := range coverages[1:] {
		if c.MidProbCells > best.MidProbCells {
			best = c
		}
	}
	return best, nil
}

// TemperaturePoint is one (Fprob at T, Fprob at T+step) pair for one cell,
// the underlying data of Figure 6.
type TemperaturePoint struct {
	Cell        CellAddr
	FprobAtT    float64
	FprobAtTUp  float64
	BaseTempC   float64
	TempStepC   float64
	DeltaFprobe float64
}

// TemperatureSweepResult aggregates a temperature-effects experiment.
type TemperatureSweepResult struct {
	BaseTempC float64
	StepC     float64
	Points    []TemperaturePoint
	// DeltaSummary is the box-and-whisker summary of Fprob(T+step) -
	// Fprob(T) over all cells that failed at either temperature.
	DeltaSummary entropy.Summary
	// IncreasedFraction is the fraction of points whose failure probability
	// increased with temperature.
	IncreasedFraction float64
	// DecreasedFraction is the fraction of points whose failure probability
	// decreased with temperature (the paper observes fewer than 25% of
	// points below the x=y line in Figure 6).
	DecreasedFraction float64
}

// TemperatureSweep measures each failure-prone cell's failure probability at
// DRAM temperature baseC and again at baseC+stepC, reproducing Figure 6's
// core comparison. The device temperature is restored to baseC afterwards.
func TemperatureSweep(ctrl *memctrl.Controller, region Region, cfg Config, baseC, stepC float64) (*TemperatureSweepResult, error) {
	if stepC <= 0 {
		return nil, fmt.Errorf("profiler: temperature step must be positive, got %v", stepC)
	}
	dev := ctrl.Device()
	if err := dev.SetTemperature(baseC); err != nil {
		return nil, err
	}
	base, err := Run(ctrl, region, cfg)
	if err != nil {
		return nil, err
	}
	if err := dev.SetTemperature(baseC + stepC); err != nil {
		return nil, err
	}
	up, err := Run(ctrl, region, cfg)
	if err != nil {
		return nil, err
	}
	if err := dev.SetTemperature(baseC); err != nil {
		return nil, err
	}

	cells := make(map[CellAddr]bool)
	for c := range base.Counts {
		cells[c] = true
	}
	for c := range up.Counts {
		cells[c] = true
	}
	res := &TemperatureSweepResult{BaseTempC: baseC, StepC: stepC}
	var deltas []float64
	increased, decreased := 0, 0
	for c := range cells {
		pt := TemperaturePoint{
			Cell:       c,
			FprobAtT:   base.Fprob(c),
			FprobAtTUp: up.Fprob(c),
			BaseTempC:  baseC,
			TempStepC:  stepC,
		}
		pt.DeltaFprobe = pt.FprobAtTUp - pt.FprobAtT
		res.Points = append(res.Points, pt)
		deltas = append(deltas, pt.DeltaFprobe)
		if pt.DeltaFprobe > 0 {
			increased++
		} else if pt.DeltaFprobe < 0 {
			decreased++
		}
	}
	if len(deltas) > 0 {
		s, err := entropy.Summarize(deltas)
		if err != nil {
			return nil, err
		}
		res.DeltaSummary = s
		res.IncreasedFraction = float64(increased) / float64(len(deltas))
		res.DecreasedFraction = float64(decreased) / float64(len(deltas))
	}
	return res, nil
}

// StabilityResult summarises the entropy-over-time experiment of
// Section 5.4: how much each cell's failure probability drifts across
// repeated profiling rounds.
type StabilityResult struct {
	Rounds int
	// MaxDriftPerCell maps each cell that ever failed to the maximum
	// absolute difference between its per-round failure probability and its
	// mean failure probability.
	MaxDriftPerCell map[CellAddr]float64
	// MeanFprobPerCell maps each cell to its mean failure probability over
	// all rounds.
	MeanFprobPerCell map[CellAddr]float64
	// WorstDrift is the largest drift observed over any cell.
	WorstDrift float64
}

// TimeStability runs the profiling loop `rounds` times (the paper uses 250
// rounds over 15 days) and reports how stable each cell's failure
// probability is; the paper's conclusion is that it does not change
// significantly over time.
func TimeStability(ctrl *memctrl.Controller, region Region, cfg Config, rounds int) (*StabilityResult, error) {
	if rounds <= 1 {
		return nil, fmt.Errorf("profiler: stability needs at least 2 rounds, got %d", rounds)
	}
	perRound := make([]map[CellAddr]int, rounds)
	cells := make(map[CellAddr]bool)
	for r := 0; r < rounds; r++ {
		prof, err := Run(ctrl, region, cfg)
		if err != nil {
			return nil, err
		}
		perRound[r] = prof.Counts
		for c := range prof.Counts {
			cells[c] = true
		}
	}
	res := &StabilityResult{
		Rounds:           rounds,
		MaxDriftPerCell:  make(map[CellAddr]float64),
		MeanFprobPerCell: make(map[CellAddr]float64),
	}
	for c := range cells {
		mean := 0.0
		for r := 0; r < rounds; r++ {
			mean += float64(perRound[r][c]) / float64(cfg.Iterations)
		}
		mean /= float64(rounds)
		maxDrift := 0.0
		for r := 0; r < rounds; r++ {
			p := float64(perRound[r][c]) / float64(cfg.Iterations)
			d := p - mean
			if d < 0 {
				d = -d
			}
			if d > maxDrift {
				maxDrift = d
			}
		}
		res.MeanFprobPerCell[c] = mean
		res.MaxDriftPerCell[c] = maxDrift
		if maxDrift > res.WorstDrift {
			res.WorstDrift = maxDrift
		}
	}
	return res, nil
}

// TRCDSweepPoint is one point of the tRCD ablation: how many cells fail, and
// how many fall in the 40–60% failure-probability band, at a given
// activation latency.
type TRCDSweepPoint struct {
	TRCDNS       float64
	FailingCells int
	MidProbCells int
}

// TRCDSweep runs Algorithm 1 at each of the supplied activation latencies
// and reports the failing-cell and RNG-candidate counts, reproducing the
// paper's observation that failures are inducible for tRCD roughly between
// 6 ns and 13 ns and absent at the default 18 ns.
func TRCDSweep(ctrl *memctrl.Controller, region Region, cfg Config, trcdValuesNS []float64) ([]TRCDSweepPoint, error) {
	if len(trcdValuesNS) == 0 {
		return nil, fmt.Errorf("profiler: no tRCD values supplied")
	}
	out := make([]TRCDSweepPoint, 0, len(trcdValuesNS))
	for _, trcd := range trcdValuesNS {
		c := cfg
		c.TRCDNS = trcd
		prof, err := Run(ctrl, region, c)
		if err != nil {
			return nil, err
		}
		pt := TRCDSweepPoint{TRCDNS: trcd, FailingCells: len(prof.Counts)}
		pt.MidProbCells = len(prof.CellsWithFprobBetween(0.4, 0.6))
		out = append(out, pt)
	}
	return out, nil
}
