package profiler

import (
	"fmt"
	"sort"

	"repro/internal/memctrl"
)

// This file implements the targeted re-characterization pass behind the
// self-healing pool lifecycle. A full Section 6.1 sweep re-screens and
// deep-profiles a whole device; a quarantined pool member only needs its
// drifted region re-measured. Recharacterize composes two experiments this
// package already has: a single SpatialDistribution screen narrows the
// region to the rows and words that still fail at all, and the TimeStability
// loop then measures each surviving cell's failure probability across
// repeated rounds, so cells whose Fprob drifted out of the RNG band — or
// whose Fprob is no longer stable round to round — are rejected.

// RecharConfig controls one targeted re-characterization pass.
type RecharConfig struct {
	// Profile holds the per-round Algorithm 1 parameters (tRCD, iterations
	// per round, data pattern).
	Profile Config
	// ScreenIterations is the iteration count of the narrowing screen pass;
	// 0 uses Profile.Iterations. The screen only decides which rows/words
	// are measured at all, so it can run much lighter than the rounds.
	ScreenIterations int
	// Rounds is the number of stability rounds (at least 2).
	Rounds int
	// MaxDrift rejects cells whose per-round failure probability deviates
	// from their mean by more than this in any round; (0,1].
	MaxDrift float64
	// LowFprob/HighFprob bound the accepted mean failure probability — the
	// paper's RNG-cell band (Section 5.2 uses [0.4, 0.6]).
	LowFprob, HighFprob float64
}

func (c RecharConfig) validate() error {
	if c.Rounds < 2 {
		return fmt.Errorf("profiler: re-characterization needs at least 2 rounds, got %d", c.Rounds)
	}
	if c.MaxDrift <= 0 || c.MaxDrift > 1 {
		return fmt.Errorf("profiler: max drift %v outside (0,1]", c.MaxDrift)
	}
	if c.LowFprob < 0 || c.HighFprob > 1 || c.LowFprob >= c.HighFprob {
		return fmt.Errorf("profiler: failure-probability band [%v,%v] invalid", c.LowFprob, c.HighFprob)
	}
	return nil
}

// StableCell is one cell that survived a targeted re-characterization pass:
// its mean failure probability sits in the configured band and its per-round
// drift stayed within bounds.
type StableCell struct {
	Addr      CellAddr
	MeanFprob float64
	// MaxDrift is the cell's largest |per-round Fprob − mean| over the pass.
	MaxDrift float64
}

// RecharResult is the outcome of one targeted re-characterization pass.
type RecharResult struct {
	// Region is the narrowed region the stability rounds actually measured
	// (the screen shrinks the requested region to its failing rows/words).
	Region Region
	// Screened is the number of distinct failing cells the screen found.
	Screened int
	// Stable holds the surviving cells sorted by (row, col).
	Stable []StableCell
	// WorstDrift is the largest drift observed over any failing cell in the
	// narrowed region, survivors or not.
	WorstDrift float64
}

// Recharacterize runs the targeted re-characterization pass over one region
// of one bank: screen once, narrow, then measure stability over
// cfg.Rounds rounds. A region with no failing cells at all returns an empty
// result rather than an error — the caller decides whether a bank with no
// usable cells fails the pass.
func Recharacterize(ctrl *memctrl.Controller, region Region, cfg RecharConfig) (*RecharResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := region.Validate(ctrl); err != nil {
		return nil, err
	}
	screenCfg := cfg.Profile
	if cfg.ScreenIterations > 0 {
		screenCfg.Iterations = cfg.ScreenIterations
	}
	narrowed, screened, err := narrowRegion(ctrl, region, screenCfg)
	if err != nil {
		return nil, err
	}
	res := &RecharResult{Region: narrowed, Screened: screened}
	if screened == 0 {
		return res, nil
	}
	stab, err := TimeStability(ctrl, narrowed, cfg.Profile, cfg.Rounds)
	if err != nil {
		return nil, err
	}
	res.WorstDrift = stab.WorstDrift
	for addr, mean := range stab.MeanFprobPerCell {
		drift := stab.MaxDriftPerCell[addr]
		if mean < cfg.LowFprob || mean > cfg.HighFprob || drift > cfg.MaxDrift {
			continue
		}
		res.Stable = append(res.Stable, StableCell{Addr: addr, MeanFprob: mean, MaxDrift: drift})
	}
	// Map iteration order is random; the lifecycle needs the pass to be a
	// pure function of the device state, so the survivors are sorted.
	sort.Slice(res.Stable, func(i, j int) bool {
		a, b := res.Stable[i].Addr, res.Stable[j].Addr
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Col < b.Col
	})
	return res, nil
}

// narrowRegion runs the screen pass and shrinks region to the bounding box
// of its failing rows and words. Regions anchored at the origin reuse the
// SpatialDistribution experiment directly; offset regions fall back to a
// plain profiling run over the region itself.
func narrowRegion(ctrl *memctrl.Controller, region Region, cfg Config) (Region, int, error) {
	g := ctrl.Device().Geometry()
	var counts map[CellAddr]int
	if region.RowStart == 0 && region.WordStart == 0 {
		m, err := SpatialDistribution(ctrl, region.Bank, region.RowCount, region.WordCount*g.WordBits, cfg)
		if err != nil {
			return Region{}, 0, err
		}
		counts = make(map[CellAddr]int)
		for r, row := range m.Failed {
			for col, failed := range row {
				if failed {
					counts[CellAddr{Bank: region.Bank, Row: r, Col: col}] = 1
				}
			}
		}
	} else {
		prof, err := Run(ctrl, region, cfg)
		if err != nil {
			return Region{}, 0, err
		}
		counts = prof.Counts
	}
	if len(counts) == 0 {
		return region, 0, nil
	}
	minRow, maxRow := region.RowStart+region.RowCount, -1
	minWord, maxWord := region.WordStart+region.WordCount, -1
	for addr := range counts {
		w := addr.Col / g.WordBits
		if addr.Row < minRow {
			minRow = addr.Row
		}
		if addr.Row > maxRow {
			maxRow = addr.Row
		}
		if w < minWord {
			minWord = w
		}
		if w > maxWord {
			maxWord = w
		}
	}
	narrowed := Region{
		Bank:      region.Bank,
		RowStart:  minRow,
		RowCount:  maxRow - minRow + 1,
		WordStart: minWord,
		WordCount: maxWord - minWord + 1,
	}
	return narrowed, len(counts), nil
}
