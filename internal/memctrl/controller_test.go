package memctrl

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/timing"
)

func newTestController(t *testing.T, opts ...Option) *Controller {
	t.Helper()
	dev, err := dram.NewDevice(dram.Config{
		Serial:       42,
		Manufacturer: dram.ManufacturerA,
		Noise:        dram.NewDeterministicNoise(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewController(dev, opts...)
}

func TestControllerReadWriteRoundTrip(t *testing.T) {
	c := newTestController(t)
	g := c.Device().Geometry()
	word := make([]uint64, g.WordBits/64)
	for i := range word {
		word[i] = 0x5555555555555555
	}
	if _, err := c.WriteWord(2, 7, 3, word); err != nil {
		t.Fatal(err)
	}
	got, done, err := c.ReadWord(2, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Errorf("data-ready cycle = %d, want positive", done)
	}
	for i := range word {
		if got[i] != word[i] {
			t.Fatalf("read back %x, want %x", got[i], word[i])
		}
	}
	s := c.Stats()
	if s.ACTs != 1 {
		t.Errorf("ACTs = %d, want 1 (row stays open between write and read)", s.ACTs)
	}
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("Reads/Writes = %d/%d, want 1/1", s.Reads, s.Writes)
	}
}

func TestControllerRowConflictPrecharges(t *testing.T) {
	c := newTestController(t)
	if _, _, err := c.ReadWord(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadWord(0, 2, 0); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.ACTs != 2 || s.PREs != 1 {
		t.Errorf("ACTs=%d PREs=%d, want 2 and 1 for a row conflict", s.ACTs, s.PREs)
	}
	row, err := c.OpenRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if row != 2 {
		t.Errorf("open row = %d, want 2", row)
	}
}

func TestControllerSetReducedTRCDValidation(t *testing.T) {
	c := newTestController(t)
	if err := c.SetReducedTRCD(0); err == nil {
		t.Error("zero tRCD accepted")
	}
	if err := c.SetReducedTRCD(25); err == nil {
		t.Error("tRCD above default accepted")
	}
	if err := c.SetReducedTRCD(10); err != nil {
		t.Fatalf("SetReducedTRCD(10): %v", err)
	}
	if c.EffectiveTRCD() != 10 {
		t.Errorf("EffectiveTRCD = %v, want 10", c.EffectiveTRCD())
	}
	c.ResetTRCD()
	if c.EffectiveTRCD() != c.Params().TRCD {
		t.Errorf("EffectiveTRCD after reset = %v, want default %v", c.EffectiveTRCD(), c.Params().TRCD)
	}
}

func TestControllerReducedTRCDCountsViolations(t *testing.T) {
	c := newTestController(t)
	if err := c.SetReducedTRCD(10); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadWord(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TRCDViolations == 0 {
		t.Error("reduced-tRCD read did not count as an intentional violation")
	}
}

func TestControllerTimingRespectsTRRDAndTRCD(t *testing.T) {
	c := newTestController(t, WithTrace())
	p := c.Params()
	// Interleave ACT-causing reads across two banks.
	if _, _, err := c.ReadWord(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadWord(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	trace := c.Trace()
	var acts []timing.Command
	var reads []timing.Command
	for _, cmd := range trace {
		switch cmd.Kind {
		case timing.CmdACT:
			acts = append(acts, cmd)
		case timing.CmdRead:
			reads = append(reads, cmd)
		}
	}
	if len(acts) != 2 || len(reads) != 2 {
		t.Fatalf("trace has %d ACTs and %d READs, want 2 and 2", len(acts), len(reads))
	}
	if gap := acts[1].IssueCycle - acts[0].IssueCycle; gap < p.Cycles(p.TRRD) {
		t.Errorf("ACT-to-ACT gap %d cycles < tRRD %d cycles", gap, p.Cycles(p.TRRD))
	}
	if gap := reads[0].IssueCycle - acts[0].IssueCycle; gap < p.Cycles(p.TRCD) {
		t.Errorf("ACT-to-READ gap %d cycles < tRCD %d cycles at default timing", gap, p.Cycles(p.TRCD))
	}
}

func TestControllerFourActivateWindow(t *testing.T) {
	c := newTestController(t, WithTrace())
	p := c.Params()
	for bank := 0; bank < 5; bank++ {
		if _, _, err := c.ReadWord(bank, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var acts []int64
	for _, cmd := range c.Trace() {
		if cmd.Kind == timing.CmdACT {
			acts = append(acts, cmd.IssueCycle)
		}
	}
	if len(acts) != 5 {
		t.Fatalf("got %d ACTs, want 5", len(acts))
	}
	if gap := acts[4] - acts[0]; gap < p.Cycles(p.TFAW) {
		t.Errorf("5th ACT only %d cycles after 1st, violates tFAW (%d cycles)", gap, p.Cycles(p.TFAW))
	}
}

func TestControllerRefreshRowRestoresCharge(t *testing.T) {
	c := newTestController(t)
	if err := c.SetReducedTRCD(10); err != nil {
		t.Fatal(err)
	}
	if err := c.RefreshRow(0, 5); err != nil {
		t.Fatal(err)
	}
	// RefreshRow must leave the bank precharged and must not count as a
	// reduced-tRCD activation on the device.
	row, err := c.OpenRow(0)
	if err != nil {
		t.Fatal(err)
	}
	if row != -1 {
		t.Errorf("open row after RefreshRow = %d, want -1", row)
	}
	if c.Device().Stats().ReducedTRCDAct != 0 {
		t.Error("RefreshRow performed a reduced-tRCD activation")
	}
}

func TestControllerPeriodicRefresh(t *testing.T) {
	c := newTestController(t, WithRefresh())
	p := c.Params()
	// Run enough accesses to cross several tREFI windows.
	rounds := int(p.Cycles(p.TREFI)/p.Cycles(p.TRC))*3 + 10
	for i := 0; i < rounds; i++ {
		if _, _, err := c.ReadWord(i%4, i%16, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Refreshes == 0 {
		t.Error("no refreshes issued despite crossing multiple tREFI windows")
	}
}

func TestControllerIdleAndSync(t *testing.T) {
	c := newTestController(t)
	before := c.Now()
	c.Idle(100)
	if c.Now() != before+100 {
		t.Errorf("Idle(100) advanced to %d, want %d", c.Now(), before+100)
	}
	c.Idle(-5)
	if c.Now() != before+100 {
		t.Error("negative idle should be a no-op")
	}
	if _, _, err := c.ReadWord(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	end := c.SyncAllBanks()
	if end < c.Now() {
		t.Errorf("SyncAllBanks returned %d before now %d", end, c.Now())
	}
	if c.NowNS() <= 0 {
		t.Error("NowNS should be positive after activity")
	}
}

func TestControllerBankRangeChecks(t *testing.T) {
	c := newTestController(t)
	if _, _, err := c.ReadWord(99, 0, 0); err == nil {
		t.Error("out-of-range bank accepted by ReadWord")
	}
	if _, err := c.WriteWord(-1, 0, 0, nil); err == nil {
		t.Error("negative bank accepted by WriteWord")
	}
	if err := c.PrechargeBank(99); err == nil {
		t.Error("out-of-range bank accepted by PrechargeBank")
	}
	if err := c.RefreshRow(99, 0); err == nil {
		t.Error("out-of-range bank accepted by RefreshRow")
	}
	if _, err := c.OpenRow(99); err == nil {
		t.Error("out-of-range bank accepted by OpenRow")
	}
}

func TestControllerTraceToggle(t *testing.T) {
	c := newTestController(t)
	if _, _, err := c.ReadWord(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if len(c.Trace()) != 0 {
		t.Error("trace recorded without WithTrace")
	}

	ct := newTestController(t, WithTrace())
	if _, _, err := ct.ReadWord(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if len(ct.Trace()) == 0 {
		t.Error("trace empty despite WithTrace")
	}
	n := ct.ResetTrace()
	if n == 0 || len(ct.Trace()) != 0 {
		t.Error("ResetTrace did not clear the trace")
	}
}
