// Package memctrl implements the memory-controller model D-RaNGe runs
// within: a programmable timing-register file (notably tRCD), per-bank state
// machines, rank-level activation constraints (tRRD, tFAW), command-bus and
// data-bus occupancy, optional refresh management, and a command trace for
// energy accounting.
//
// The controller issues commands in program order at the earliest legal
// cycle, which models the firmware sampling routine of Section 6.3: a simple
// loop that interleaves accesses across banks.
package memctrl

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/timing"
)

// Stats aggregates the controller's activity counters.
type Stats struct {
	Cycles        int64
	ACTs          int64
	PREs          int64
	Reads         int64
	Writes        int64
	Refreshes     int64
	DataBusCycles int64
	// TRCDViolations counts intentionally induced tRCD violations (reads
	// issued under a reduced activation latency).
	TRCDViolations int64
}

// Option configures a Controller.
type Option func(*Controller)

// WithTrace enables command-trace recording (needed for energy analysis).
func WithTrace() Option {
	return func(c *Controller) { c.traceEnabled = true }
}

// WithRefresh enables periodic all-bank refresh every tREFI.
func WithRefresh() Option {
	return func(c *Controller) { c.refreshEnabled = true }
}

// Controller drives one simulated DRAM device (one channel) with
// cycle-accurate command timing.
type Controller struct {
	dev    device.Device
	params timing.Params

	// Cached cycle conversions of the rank-level constraints (Params
	// conversions copy the parameter struct per call — too costly per
	// sampled word).
	cTRRD, cTFAW, cBurst, cTCWL int64

	// reducedTRCDNS is the programmed activation latency override in
	// nanoseconds; 0 means the JEDEC default applies.
	reducedTRCDNS float64

	banks []*timing.BankFSM

	now     int64
	lastACT int64
	// recentACTs is a fixed ring of the last four activate cycles (for the
	// four-activate tFAW window); actCount is the number of ACTs issued.
	recentACTs   [4]int64
	actCount     int64
	busBusyUntil int64

	refreshEnabled bool
	nextRefresh    int64

	traceEnabled bool
	trace        []timing.Command

	stats Stats
}

// NewController builds a controller for dev. Any device.Device works — the
// built-in simulator, a replayed operation log, or a fault-injecting wrapper.
func NewController(dev device.Device, opts ...Option) *Controller {
	p := dev.Timing()
	c := &Controller{
		dev:     dev,
		params:  p,
		cTRRD:   p.Cycles(p.TRRD),
		cTFAW:   p.Cycles(p.TFAW),
		cBurst:  p.BurstCycles(),
		cTCWL:   p.Cycles(p.TCWL),
		banks:   make([]*timing.BankFSM, dev.Geometry().Banks),
		lastACT: -1 << 60,
	}
	for i := range c.banks {
		c.banks[i] = timing.NewBankFSM(p)
		// A controller takes over a device assuming every bank is
		// precharged; close any rows a previous controller left open.
		_ = dev.Precharge(i)
	}
	for _, o := range opts {
		o(c)
	}
	if c.refreshEnabled {
		c.nextRefresh = p.Cycles(p.TREFI)
	}
	return c
}

// Device returns the device this controller drives.
func (c *Controller) Device() device.Device { return c.dev }

// Params returns the controller's default timing parameters.
func (c *Controller) Params() timing.Params { return c.params }

// Now returns the current command-clock cycle.
func (c *Controller) Now() int64 { return c.now }

// NowNS returns the current time in nanoseconds.
func (c *Controller) NowNS() float64 { return c.params.NS(c.now) }

// Stats returns a snapshot of the controller's counters.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Cycles = c.now
	return s
}

// Trace returns the recorded command trace (nil unless WithTrace was used).
func (c *Controller) Trace() []timing.Command { return c.trace }

// ResetTrace discards the recorded command trace and returns the number of
// commands dropped.
func (c *Controller) ResetTrace() int {
	n := len(c.trace)
	c.trace = c.trace[:0]
	return n
}

// SetReducedTRCD programs the timing-register file with a reduced activation
// latency in nanoseconds. The paper finds activation failures inducible for
// tRCD between roughly 6 ns and 13 ns (default 18 ns); the controller
// accepts any positive value not exceeding the default.
func (c *Controller) SetReducedTRCD(ns float64) error {
	if ns <= 0 {
		return fmt.Errorf("memctrl: reduced tRCD must be positive, got %v", ns)
	}
	if ns > c.params.TRCD {
		return fmt.Errorf("memctrl: reduced tRCD %v ns exceeds the default %v ns", ns, c.params.TRCD)
	}
	c.reducedTRCDNS = ns
	return nil
}

// ResetTRCD restores the default activation latency.
func (c *Controller) ResetTRCD() { c.reducedTRCDNS = 0 }

// EffectiveTRCD returns the activation latency currently in effect, in
// nanoseconds.
func (c *Controller) EffectiveTRCD() float64 {
	if c.reducedTRCDNS > 0 {
		return c.reducedTRCDNS
	}
	return c.params.TRCD
}

// record appends a command to the trace (when enabled) and bumps counters.
func (c *Controller) record(kind timing.CommandKind, bank, row, col int, cycle int64) {
	switch kind {
	case timing.CmdACT:
		c.stats.ACTs++
	case timing.CmdPRE:
		c.stats.PREs++
	case timing.CmdRead:
		c.stats.Reads++
	case timing.CmdWrite:
		c.stats.Writes++
	case timing.CmdRefresh:
		c.stats.Refreshes++
	}
	if c.traceEnabled {
		c.trace = append(c.trace, timing.Command{
			Kind: kind, Bank: bank, Row: row, Column: col, IssueCycle: cycle,
			TRCDOverrideNS: c.reducedTRCDNS,
		})
	}
}

func (c *Controller) checkBank(bank int) error {
	if bank < 0 || bank >= len(c.banks) {
		return fmt.Errorf("memctrl: bank %d out of range [0,%d)", bank, len(c.banks))
	}
	return nil
}

// maybeRefresh issues a pending refresh if one is due. All banks are
// precharged first.
func (c *Controller) maybeRefresh() error {
	if !c.refreshEnabled || c.now < c.nextRefresh {
		return nil
	}
	for bank := range c.banks {
		if c.banks[bank].OpenRow() >= 0 {
			if err := c.prechargeAt(bank, c.earliestFor(c.banks[bank].EarliestPRE())); err != nil {
				return err
			}
		}
	}
	// Wait until every bank can accept the refresh.
	issue := c.now
	for _, b := range c.banks {
		if b.EarliestACT() > issue {
			issue = b.EarliestACT()
		}
	}
	for bank, b := range c.banks {
		if _, err := b.Refresh(issue); err != nil {
			return fmt.Errorf("memctrl: refresh failed on bank %d: %w", bank, err)
		}
	}
	if err := c.dev.Refresh(); err != nil {
		return err
	}
	c.record(timing.CmdRefresh, -1, -1, -1, issue)
	c.now = issue + 1
	c.nextRefresh += c.params.Cycles(c.params.TREFI)
	return nil
}

// earliestFor returns the issue cycle for a command whose per-bank earliest
// legal cycle is e, given that the command bus carries one command per cycle
// in program order.
func (c *Controller) earliestFor(e int64) int64 {
	if e < c.now {
		return c.now
	}
	return e
}

// activateAt issues an ACT to (bank, row) at the earliest legal cycle,
// honouring tRRD and tFAW across banks. It returns the issue cycle.
func (c *Controller) activateAt(bank, row int) (int64, error) {
	b := c.banks[bank]
	issue := c.earliestFor(b.EarliestACT())
	if t := c.lastACT + c.cTRRD; t > issue {
		issue = t
	}
	if c.actCount >= 4 {
		// The oldest of the last four ACTs sits at the ring slot the new ACT
		// is about to overwrite.
		if t := c.recentACTs[c.actCount&3] + c.cTFAW; t > issue {
			issue = t
		}
	}
	trcd := c.reducedTRCDNS
	if _, err := b.Activate(issue, row, trcd); err != nil {
		return 0, err
	}
	if err := c.dev.Activate(bank, row, c.EffectiveTRCD()); err != nil {
		return 0, err
	}
	c.lastACT = issue
	c.recentACTs[c.actCount&3] = issue
	c.actCount++
	c.record(timing.CmdACT, bank, row, -1, issue)
	c.now = issue + 1
	return issue, nil
}

// prechargeAt issues a PRE to bank at the earliest legal cycle.
func (c *Controller) prechargeAt(bank int, earliest int64) error {
	b := c.banks[bank]
	issue := c.earliestFor(earliest)
	if _, err := b.Precharge(issue); err != nil {
		return err
	}
	if err := c.dev.Precharge(bank); err != nil {
		return err
	}
	c.record(timing.CmdPRE, bank, -1, -1, issue)
	c.now = issue + 1
	return nil
}

// PrechargeBank closes the open row of bank (no-op when already closed).
func (c *Controller) PrechargeBank(bank int) error {
	if err := c.checkBank(bank); err != nil {
		return err
	}
	b := c.banks[bank]
	if b.OpenRow() < 0 {
		return nil
	}
	return c.prechargeAt(bank, b.EarliestPRE())
}

// openRowFor ensures row is open in bank, precharging any other open row and
// activating as needed.
func (c *Controller) openRowFor(bank, row int) error {
	if err := c.maybeRefresh(); err != nil {
		return err
	}
	b := c.banks[bank]
	open := b.OpenRow()
	if open == row {
		return nil
	}
	if open >= 0 {
		if err := c.prechargeAt(bank, b.EarliestPRE()); err != nil {
			return err
		}
	}
	_, err := c.activateAt(bank, row)
	return err
}

// ActivateRow ensures row is open in bank, precharging any other open row
// first. Issuing the activations for several banks before their column
// commands lets the controller overlap the activation latencies across
// banks, which is how Algorithm 2 exploits bank-level parallelism.
func (c *Controller) ActivateRow(bank, row int) error {
	if err := c.checkBank(bank); err != nil {
		return err
	}
	g := c.dev.Geometry()
	if row < 0 || row >= g.RowsPerBank {
		return fmt.Errorf("memctrl: row %d out of range [0,%d)", row, g.RowsPerBank)
	}
	return c.openRowFor(bank, row)
}

// ReadWord reads the DRAM word at (bank, row, wordIdx) using the currently
// programmed timing parameters (reduced tRCD induces activation failures in
// the first word read after the activation). It returns the word and the
// cycle at which the data burst completes on the data bus.
func (c *Controller) ReadWord(bank, row, wordIdx int) ([]uint64, int64, error) {
	data := make([]uint64, c.dev.Geometry().WordBits/64)
	done, err := c.ReadWordInto(bank, row, wordIdx, data)
	if err != nil {
		return nil, 0, err
	}
	return data, done, nil
}

// ReadWordInto is ReadWord writing the word into dst (which must hold
// WordBits/64 uint64s), so steady-state sampling loops can reuse one buffer
// instead of allocating per read. It returns the cycle at which the data
// burst completes.
//
//drange:noalloc
func (c *Controller) ReadWordInto(bank, row, wordIdx int, dst []uint64) (int64, error) {
	if err := c.checkBank(bank); err != nil {
		return 0, err
	}
	if err := c.openRowFor(bank, row); err != nil {
		return 0, err
	}
	b := c.banks[bank]
	issue := c.earliestFor(b.EarliestRead())
	done, viol, err := b.Read(issue)
	if err != nil {
		return 0, err
	}
	if viol != nil && !viol.Intentional() {
		return 0, viol
	}
	if viol != nil {
		c.stats.TRCDViolations++
	}
	if c.reducedTRCDNS > 0 {
		c.stats.TRCDViolations++
	}
	if err := readWordInto(c.dev, bank, wordIdx, dst); err != nil {
		return 0, err
	}
	if done < c.busBusyUntil+c.cBurst {
		done = c.busBusyUntil + c.cBurst
	}
	c.busBusyUntil = done
	c.stats.DataBusCycles += c.cBurst
	c.record(timing.CmdRead, bank, row, wordIdx, issue)
	c.now = issue + 1
	return done, nil
}

// readWordInto reads a device word into dst, using the device's
// allocation-free fast path when it offers one (the capability is optional so
// wrapping backends — replay, fault injection — keep working unchanged).
func readWordInto(dev device.Device, bank, wordIdx int, dst []uint64) error {
	if fast, ok := dev.(device.WordReaderInto); ok {
		return fast.ReadWordInto(bank, wordIdx, dst)
	}
	data, err := dev.ReadWord(bank, wordIdx)
	if err != nil {
		return err
	}
	copy(dst, data)
	return nil
}

// WriteWord writes the DRAM word at (bank, row, wordIdx). It returns the
// cycle at which write recovery completes.
func (c *Controller) WriteWord(bank, row, wordIdx int, word []uint64) (int64, error) {
	if err := c.checkBank(bank); err != nil {
		return 0, err
	}
	if err := c.openRowFor(bank, row); err != nil {
		return 0, err
	}
	b := c.banks[bank]
	issue := c.earliestFor(b.EarliestWrite())
	done, viol, err := b.Write(issue)
	if err != nil {
		return 0, err
	}
	if viol != nil && !viol.Intentional() {
		return 0, viol
	}
	if err := c.dev.WriteWord(bank, wordIdx, word); err != nil {
		return 0, err
	}
	c.busBusyUntil = issue + c.cTCWL + c.cBurst
	c.stats.DataBusCycles += c.cBurst
	c.record(timing.CmdWrite, bank, row, wordIdx, issue)
	c.now = issue + 1
	return done, nil
}

// RefreshRow restores the charge of every cell in (bank, row) by activating
// and precharging it with nominal timing — the "refresh a row" step of the
// paper's Algorithm 1 (lines 6–7).
func (c *Controller) RefreshRow(bank, row int) error {
	if err := c.checkBank(bank); err != nil {
		return err
	}
	saved := c.reducedTRCDNS
	c.reducedTRCDNS = 0
	defer func() { c.reducedTRCDNS = saved }()
	if err := c.openRowFor(bank, row); err != nil {
		return err
	}
	return c.PrechargeBank(bank)
}

// Idle advances the controller clock by the given number of cycles without
// issuing commands (models the controller servicing nothing or other ranks).
func (c *Controller) Idle(cycles int64) {
	if cycles > 0 {
		c.now += cycles
	}
}

// SyncAllBanks advances the clock until every bank has completed its
// outstanding timing windows (all banks precharged or active and stable),
// and returns the resulting cycle.
func (c *Controller) SyncAllBanks() int64 {
	latest := c.now
	for _, b := range c.banks {
		if b.EarliestACT() > latest {
			latest = b.EarliestACT()
		}
		if b.EarliestPRE() > latest && b.OpenRow() >= 0 {
			latest = b.EarliestPRE()
		}
	}
	if c.busBusyUntil > latest {
		latest = c.busBusyUntil
	}
	c.now = latest
	return c.now
}

// OpenRow returns the row currently open in bank, or -1.
func (c *Controller) OpenRow(bank int) (int, error) {
	if err := c.checkBank(bank); err != nil {
		return 0, err
	}
	return c.banks[bank].OpenRow(), nil
}
