# Developer entry points. `make lint` runs the exact checks CI's gate jobs
# run, so a clean `make lint && make test` locally predicts a green build.

GO ?= go

.PHONY: all build test race lint fmt vet drange-vet staticcheck govulncheck

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = gofmt + go vet + drange-vet + staticcheck + govulncheck, in the same
# order as .github/workflows/ci.yml. staticcheck and govulncheck are skipped
# with a notice when the binaries are not installed (CI installs them; local
# runs may not have them), so the always-available checks still gate.
lint: fmt vet drange-vet staticcheck govulncheck

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

# drange-vet is this repo's own analyzer suite (cmd/drange-vet): lockcheck,
# noalloc, entropyflow, packedpath, deprecations, seedtaint and atomiccheck.
# It runs under the standard vet driver so findings carry package/position
# info and results (including the interprocedural facts seedtaint and
# atomiccheck exchange) are cached per package like any other vet analysis.
drange-vet:
	$(GO) build -o bin/drange-vet ./cmd/drange-vet
	$(GO) vet -vettool=$(CURDIR)/bin/drange-vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi
