// Characterization: reproduce the per-device characterization flow of
// Section 5 on one simulated device — where activation failures live
// (spatial distribution), which data pattern exposes the most ~50% cells,
// how temperature shifts failure probability, and how many RNG cells each
// DRAM word ends up holding.
package main

import (
	"fmt"
	"log"

	"repro/drange"
	"repro/internal/memctrl"
	"repro/internal/pattern"
	"repro/internal/profiler"
)

func main() {
	gen, err := drange.New(drange.Config{Manufacturer: "C", Serial: 5, Deterministic: true})
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	dev := gen.Device()
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 20, Pattern: pattern.BestFor("C")}

	// Spatial distribution (Figure 4).
	ctrl := memctrl.NewController(dev)
	spatial, err := profiler.SpatialDistribution(ctrl, 0, 256, 1024, cfg)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Printf("spatial distribution: %d failing columns in a 256x1024 window: %v\n",
		len(spatial.FailingColumns()), spatial.FailingColumns())

	// Data-pattern dependence (Figure 5) over a representative pattern set.
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 96, WordStart: 0, WordCount: 8}
	pats := []pattern.Pattern{
		pattern.Solid0(), pattern.Solid1(), pattern.Checkered0(), pattern.Checkered1(),
		pattern.Walking0(3), pattern.Walking1(3),
	}
	cov, err := profiler.DataPatternDependence(memctrl.NewController(dev), region, pats, cfg)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Println("\ndata pattern dependence:")
	for _, c := range cov {
		fmt.Printf("  %-12s coverage %.2f, failing cells %4d, ~50%% cells %3d\n", c.Pattern, c.Coverage, c.Failures, c.MidProbCells)
	}

	// Temperature effects (Figure 6).
	temp, err := profiler.TemperatureSweep(memctrl.NewController(dev), region, cfg, 55, 5)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Printf("\ntemperature 55→60 °C: %d cells tracked, %.0f%% increased Fprob, %.0f%% decreased\n",
		len(temp.Points), 100*temp.IncreasedFraction, 100*temp.DecreasedFraction)

	// RNG-cell density per word (Figure 7), from the identification New()
	// already performed.
	fmt.Println("\nRNG cells per DRAM word (per bank):")
	for _, h := range gen.DensityHistograms() {
		fmt.Printf("  bank %d: %d RNG cells, densest word holds %d\n", h.Bank, h.TotalRNGCells, h.MaxCellsPerWord)
	}
}
