// Characterization: the characterize-once / open-many lifecycle the paper's
// deployment implies. Identify a device's RNG cells once (Sections 6.1–6.2),
// inspect what was found, persist the profile as JSON, reload it — possibly
// on another machine, much later — and open a generator in milliseconds that
// produces exactly the stream the original characterization promised.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/drange"
)

func main() {
	ctx := context.Background()

	// One-time step: identify RNG cells on a deterministic device so the
	// reopened generator below is byte-comparable.
	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer("C"),
		drange.WithSerial(5),
		drange.WithDeterministic(true),
	)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Printf("characterized manufacturer-%s device, serial %d\n", profile.Manufacturer, profile.Serial)
	fmt.Printf("  pattern %s, tRCD %.0f ns, %d samples/cell\n",
		profile.Characterization.Pattern, profile.Characterization.TRCDNS, profile.Characterization.Samples)
	fmt.Printf("  %d RNG cells, %d banks selected, %d bits per core-loop pass\n",
		len(profile.Cells), profile.Banks(), profile.BitsPerIteration())

	// RNG-cell density per word (Figure 7), straight from the profile.
	fmt.Println("\nRNG cells per DRAM word (per bank):")
	for _, h := range profile.DensityHistograms() {
		fmt.Printf("  bank %d: %d RNG cells, densest word holds %d\n", h.Bank, h.TotalRNGCells, h.MaxCellsPerWord)
	}

	// Persist the profile: versioned JSON with an integrity checksum.
	path := filepath.Join(os.TempDir(), "drange-device-profile.json")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	if err := profile.Save(f); err != nil {
		log.Fatalf("characterization: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Printf("\nprofile saved to %s\n", path)

	// Much later, elsewhere: reload and open without re-characterizing.
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	reloaded, err := drange.DecodeProfile(data)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	src, err := drange.Open(ctx, reloaded)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	defer src.Close()

	// The reopened generator matches one opened from the original profile
	// bit for bit (deterministic noise).
	orig, err := drange.Open(ctx, profile)
	if err != nil {
		log.Fatalf("characterization: %v", err)
	}
	defer orig.Close()
	a := make([]byte, 64)
	b := make([]byte, 64)
	if _, err := src.Read(a); err != nil {
		log.Fatalf("characterization: %v", err)
	}
	if _, err := orig.Read(b); err != nil {
		log.Fatalf("characterization: %v", err)
	}
	fmt.Printf("reloaded profile reproduces the original stream: %v\n", bytes.Equal(a, b))
}
