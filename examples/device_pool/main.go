// Example device_pool multiplexes a fleet of DRAM devices behind one Source
// with drange.OpenPool, and demonstrates the health tracking that keeps a
// fleet honest: one member is opened through the "faulty" backend (every
// column stuck at 1 — the bias failure the paper's RNG-cell selection
// guards against), and the pool evicts it after its first health window
// while reads continue uninterrupted from the healthy devices.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/drange"
)

func main() {
	ctx := context.Background()

	// Characterize a small fleet: one profile per device. In a real
	// deployment these are produced once per chip and persisted.
	var profiles []*drange.Profile
	for serial := uint64(1); serial <= 4; serial++ {
		p, err := drange.Characterize(ctx,
			drange.WithManufacturer("A"),
			drange.WithSerial(serial),
			drange.WithDeterministic(true),
			drange.WithProfilingRegion(64, 8, 4),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %d: %d RNG cells, %d bits/iteration\n",
			serial, len(p.Cells), p.BitsPerIteration())
		profiles = append(profiles, p)
	}

	// Open the pool. Device 2 goes through the fault-injecting backend; the
	// tight health window makes the eviction visible within a few reads.
	pool, err := drange.OpenPool(ctx, profiles,
		drange.WithShards(2), // 2 harvesting shards per device
		drange.WithDeviceBackend(2, "faulty", map[string]string{"stuck": "1"}),
		drange.WithHealth(drange.HealthPolicy{WindowBits: 1024, MaxBiasDelta: 0.1}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Read through the eviction: the pool's Read never fails while healthy
	// devices remain.
	buf := make([]byte, 4096)
	if _, err := pool.Read(buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread %d bytes; first 16: %x\n", len(buf), buf[:16])

	st := pool.Stats()
	fmt.Printf("aggregate: %.1f Mb/s simulated, %d/%d devices healthy\n\n",
		st.AggregateThroughputMbps, pool.Healthy(), pool.Devices())
	for _, d := range st.Devices {
		state := "healthy"
		if d.Evicted {
			state = "EVICTED: " + d.Reason
		}
		fmt.Printf("  device %d (serial %d, backend %-6s): %6d bits delivered, %.1f Mb/s, bias %.3f — %s\n",
			d.Device, d.Serial, d.Backend, d.BitsDelivered, d.ThroughputMbps, d.BiasDelta, state)
	}
}
