// Parallel stream: harvest random data with the concurrent sharded engine.
// Opening a profile with WithShards(4) partitions the bank selections across
// four simulated channel controllers, each harvesting on its own goroutine
// into a bounded packed-bit ring — the paper's bank/channel parallelism as a
// thread-safe io.Reader behind the same Source interface as the sequential
// sampler. Concurrent consumers read from the same Source, and the per-shard
// accounting shows the measured multi-bank scaling.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"sync"

	"repro/drange"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer("A"),
		drange.WithSerial(42),
	)
	if err != nil {
		log.Fatalf("parallel_stream: %v", err)
	}
	fmt.Printf("identified %d RNG cells across %d banks\n", len(profile.Cells), profile.Banks())

	// Four shards: four independent channel controllers over disjoint bank
	// subsets. Cancelling the context (or calling Close) stops the harvest.
	src, err := drange.Open(ctx, profile, drange.WithShards(4))
	if err != nil {
		log.Fatalf("parallel_stream: %v", err)
	}
	defer src.Close()
	fmt.Printf("engine running with %d shards\n", src.(*drange.Generator).Shards())

	// The Source is safe for concurrent use: several consumers share it.
	var wg sync.WaitGroup
	streams := make([][]byte, 4)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 256)
			if _, err := src.Read(buf); err != nil {
				log.Printf("parallel_stream: consumer %d: %v", i, err)
				return
			}
			streams[i] = buf
		}(i)
	}
	wg.Wait()
	for i, s := range streams {
		if len(s) >= 16 {
			fmt.Printf("consumer %d, first 16 bytes: %s\n", i, hex.EncodeToString(s[:16]))
		}
	}

	st := src.Stats()
	fmt.Println("\nshard banks bits_harvested sim_us Mb/s latency64_ns")
	for _, ss := range st.Shards {
		fmt.Printf("%5d %5d %14d %6.1f %6.1f %12.0f\n",
			ss.Shard, ss.Banks, ss.BitsHarvested, ss.SimNS/1000, ss.ThroughputMbps, ss.Latency64NS)
	}
	fmt.Printf("aggregate: %.1f Mb/s simulated, %.0f ns per 64-bit value\n",
		st.AggregateThroughputMbps, st.Latency64NS)
}
