// Parallel stream: harvest random data with the concurrent sharded engine.
// The generator's bank selections are partitioned across several simulated
// channel controllers, each harvesting on its own goroutine into a bounded
// packed-bit ring — the paper's bank/channel parallelism as a thread-safe
// io.Reader. Concurrent consumers read from the same engine, and the
// per-shard accounting shows the measured multi-bank scaling.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	"sync"

	"repro/drange"
)

func main() {
	gen, err := drange.New(drange.Config{Manufacturer: "A", Serial: 42})
	if err != nil {
		log.Fatalf("parallel_stream: %v", err)
	}
	fmt.Printf("identified %d RNG cells across %d banks\n", len(gen.Cells()), gen.Banks())

	// Four shards: four independent channel controllers over disjoint bank
	// subsets. Cancelling the context (or calling Close) stops the harvest.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng, err := gen.Engine(ctx, 4)
	if err != nil {
		log.Fatalf("parallel_stream: %v", err)
	}
	defer eng.Close()
	fmt.Printf("engine running with %d shards\n", eng.Shards())

	// The engine is safe for concurrent use: several consumers share it.
	var wg sync.WaitGroup
	streams := make([][]byte, 4)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 256)
			if _, err := eng.Read(buf); err != nil {
				log.Printf("parallel_stream: consumer %d: %v", i, err)
				return
			}
			streams[i] = buf
		}(i)
	}
	wg.Wait()
	for i, s := range streams {
		if len(s) >= 16 {
			fmt.Printf("consumer %d, first 16 bytes: %s\n", i, hex.EncodeToString(s[:16]))
		}
	}

	st := eng.Stats()
	fmt.Println("\nshard banks bits_harvested sim_us Mb/s latency64_ns")
	for _, ss := range st.Shards {
		fmt.Printf("%5d %5d %14d %6.1f %6.1f %12.0f\n",
			ss.Shard, ss.Banks, ss.BitsHarvested, ss.SimNS/1000, ss.ThroughputMbps, ss.Latency64NS)
	}
	fmt.Printf("aggregate: %.1f Mb/s simulated, %.0f ns per 64-bit value\n",
		st.AggregateThroughputMbps, st.Latency64NS)
}
