// Quickstart: open a simulated DRAM device, let D-RaNGe identify its RNG
// cells, and read 1 KiB of true random data through the io.Reader API.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"repro/drange"
)

func main() {
	// Open a manufacturer-A LPDDR4 device. New profiles the device with a
	// reduced activation latency (tRCD = 10 ns), identifies RNG cells, and
	// prepares the Algorithm 2 sampler.
	gen, err := drange.New(drange.Config{Manufacturer: "A", Serial: 42})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("identified %d RNG cells across %d banks\n", len(gen.Cells()), gen.Banks())

	buf := make([]byte, 1024)
	if _, err := gen.Read(buf); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("first 32 random bytes: %s\n", hex.EncodeToString(buf[:32]))

	v, err := gen.Uint64()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("a 64-bit random value: %#016x\n", v)

	res, err := gen.EstimateThroughput(gen.Banks(), 100)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("estimated throughput with %d banks: %.1f Mb/s per channel\n", gen.Banks(), res.ThroughputMbps)
}
