// Quickstart: characterize a simulated DRAM device once, open a D-RaNGe
// source from the resulting profile, and read 1 KiB of true random data
// through the io.Reader API.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"
	mrand "math/rand/v2"

	"repro/drange"
)

func main() {
	ctx := context.Background()

	// Characterize profiles the device with a reduced activation latency
	// (tRCD = 10 ns), identifies RNG cells (Section 6.1 of the paper), and
	// selects the best two DRAM words per bank (Section 6.2). This is the
	// expensive one-time-per-device step; persist the profile with
	// profile.Encode() and skip it on later runs.
	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer("A"),
		drange.WithSerial(42),
	)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("identified %d RNG cells across %d banks\n", len(profile.Cells), profile.Banks())

	// Open starts generating against the profiled device in milliseconds —
	// no re-identification.
	src, err := drange.Open(ctx, profile)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	defer src.Close()

	buf := make([]byte, 1024)
	if _, err := src.Read(buf); err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("first 32 random bytes: %s\n", hex.EncodeToString(buf[:32]))

	v, err := src.Uint64()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("a 64-bit random value: %#016x\n", v)

	// The Source plugs straight into math/rand/v2.
	rng := mrand.New(drange.RandSource(src))
	fmt.Printf("a DRAM-backed die roll: %d\n", rng.IntN(6)+1)

	// The concrete type behind Open exposes the paper's estimators.
	gen := src.(*drange.Generator)
	res, err := gen.EstimateThroughput(gen.Banks(), 100)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("estimated throughput with %d banks: %.1f Mb/s per channel\n", gen.Banks(), res.ThroughputMbps)
}
