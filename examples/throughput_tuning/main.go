// Throughput tuning: the "low system interference" scenario of Section 7.3.
// D-RaNGe trades TRNG throughput against the slowdown experienced by
// co-running applications by choosing how many banks it uses and by running
// only in otherwise-idle DRAM cycles. This example sweeps both knobs: banks
// used (1..all) and co-running workload intensity.
package main

import (
	"fmt"
	"log"

	"repro/drange"
	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	gen, err := drange.New(drange.Config{Manufacturer: "A", Serial: 3})
	if err != nil {
		log.Fatalf("throughput_tuning: %v", err)
	}

	fmt.Println("== throughput vs banks used (dedicated channel) ==")
	fmt.Println("banks  Mb/s/channel  Mb/s with 4 channels")
	var fullMbps float64
	for banks := 1; banks <= gen.Banks(); banks++ {
		res, err := gen.EstimateThroughput(banks, 150)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		four, err := core.MultiChannelThroughputMbps(res.ThroughputMbps, 4)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		fmt.Printf("%5d  %12.1f  %20.1f\n", banks, res.ThroughputMbps, four)
		fullMbps = res.ThroughputMbps
	}

	fmt.Println("\n== throughput from idle DRAM cycles under co-running workloads ==")
	fmt.Println("workload          idle_fraction  trng_Mb/s (no slowdown to the workload)")
	geom := gen.Device().Geometry()
	for _, p := range workload.Profiles() {
		reqs, err := workload.Generate(p, workload.Config{
			Banks:       geom.Banks,
			RowsPerBank: geom.RowsPerBank,
			WordsPerRow: geom.WordsPerRow(),
			DurationNS:  200000,
			Seed:        99,
		})
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		rep, err := sim.ReplayWorkload(memctrl.NewController(gen.Device()), reqs)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		tput, err := sim.IdleBandwidthThroughputMbps(fullMbps, rep.IdleFraction)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		fmt.Printf("%-16s  %12.3f  %10.1f\n", p.Name, rep.IdleFraction, tput)
	}
}
