// Throughput tuning: the scaling knobs of Section 7.3. D-RaNGe throughput
// grows with the number of banks sampled per channel (Figure 8) and with the
// number of channels sampled in parallel (Table 2's 4-channel peak). This
// example sweeps both through the public API: the bank sweep uses the
// analytic estimator, the channel sweep opens the same profile with
// increasing WithShards counts and reports the measured simulated rates.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/drange"
)

func main() {
	ctx := context.Background()

	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer("A"),
		drange.WithSerial(3),
		drange.WithDeterministic(true),
	)
	if err != nil {
		log.Fatalf("throughput_tuning: %v", err)
	}
	src, err := drange.Open(ctx, profile)
	if err != nil {
		log.Fatalf("throughput_tuning: %v", err)
	}
	defer src.Close()
	gen := src.(*drange.Generator)

	fmt.Println("== estimated throughput vs banks used (dedicated channel) ==")
	fmt.Println("banks  Mb/s/channel  64-bit latency (ns)")
	for banks := 1; banks <= gen.Banks(); banks++ {
		res, err := gen.EstimateThroughput(banks, 150)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		lat, err := gen.EstimateLatency(banks, 64)
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		fmt.Printf("%5d  %12.1f  %19.0f\n", banks, res.ThroughputMbps, lat)
	}

	fmt.Println("\n== measured throughput vs parallel shards (channel controllers) ==")
	fmt.Println("shards banks Mb/s_aggregate latency64_ns")
	for _, shards := range []int{1, 2, 4} {
		if shards > profile.Banks() {
			break
		}
		sharded, err := drange.Open(ctx, profile, drange.WithShards(shards))
		if err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		if _, err := sharded.ReadBits(4096 * shards); err != nil {
			log.Fatalf("throughput_tuning: %v", err)
		}
		st := sharded.Stats()
		sharded.Close()
		banks := 0
		for _, ss := range st.Shards {
			banks += ss.Banks
		}
		fmt.Printf("%6d %5d %14.1f %12.0f\n", len(st.Shards), banks, st.AggregateThroughputMbps, st.Latency64NS)
	}
	fmt.Println("\n(idle-bandwidth operation under co-running workloads: drange-figures -table interference)")
}
