// Keygen: the security scenario from the paper's introduction — generate
// cryptographic key material (an AES-256 key, a 2048-bit one-time pad, and a
// TLS-style client random) directly from DRAM activation failures, and
// sanity-check the entropy of the stream with the quick NIST tests.
//
// D-RaNGe's RNG cells are selected to be unbiased, so no post-processing
// step sits between the DRAM and the key material.
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"repro/drange"
	"repro/internal/entropy"
	"repro/internal/nist"
)

func main() {
	gen, err := drange.New(drange.Config{Manufacturer: "B", Serial: 7})
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}

	// AES-256 key: 32 bytes.
	aesKey := make([]byte, 32)
	if _, err := gen.Read(aesKey); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("AES-256 key:        %s\n", hex.EncodeToString(aesKey))

	// TLS-style 32-byte client random.
	clientRandom := make([]byte, 32)
	if _, err := gen.Read(clientRandom); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("TLS client random:  %s\n", hex.EncodeToString(clientRandom))

	// A 2048-bit one-time pad.
	pad := make([]byte, 256)
	if _, err := gen.Read(pad); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("one-time pad (first 32 of 256 bytes): %s\n", hex.EncodeToString(pad[:32]))

	// Sanity-check a longer stream with the fast NIST tests.
	bits, err := gen.ReadBits(40000)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	bias, err := entropy.Bias(bits)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	mono, err := nist.Monobit(bits)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	mono.Evaluate(nist.DefaultAlpha)
	runs, err := nist.Runs(bits)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	runs.Evaluate(nist.DefaultAlpha)
	fmt.Printf("stream check over 40000 bits: bias=%.4f, monobit p=%.3f (%v), runs p=%.3f (%v)\n",
		bias, mono.PValue, mono.Pass, runs.PValue, runs.Pass)
}
