// Keygen: the security scenario from the paper's introduction — generate
// cryptographic key material (an AES-256 key, a 2048-bit one-time pad, and a
// TLS-style client random) directly from DRAM activation failures, and
// sanity-check the stream with the NIST suite.
//
// D-RaNGe's RNG cells are selected to be unbiased, so no post-processing
// step is needed between the DRAM and the key material; the example also
// opens a second, SHA-256-conditioned source (WithPostprocess) to show the
// Section 2.2 corrector chain for defence-in-depth deployments.
package main

import (
	"context"
	"encoding/hex"
	"fmt"
	"log"

	"repro/drange"
)

func main() {
	ctx := context.Background()

	// One characterization serves every source opened against this device.
	profile, err := drange.Characterize(ctx,
		drange.WithManufacturer("B"),
		drange.WithSerial(7),
	)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}

	src, err := drange.Open(ctx, profile)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	defer src.Close()

	// AES-256 key: 32 bytes.
	aesKey := make([]byte, 32)
	if _, err := src.Read(aesKey); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("AES-256 key:        %s\n", hex.EncodeToString(aesKey))

	// TLS-style 32-byte client random.
	clientRandom := make([]byte, 32)
	if _, err := src.Read(clientRandom); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("TLS client random:  %s\n", hex.EncodeToString(clientRandom))

	// A 2048-bit one-time pad.
	pad := make([]byte, 256)
	if _, err := src.Read(pad); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("one-time pad (first 32 of 256 bytes): %s\n", hex.EncodeToString(pad[:32]))

	// Defence in depth: the same profile, conditioned through SHA-256
	// (1024 raw bits per 256-bit digest). The paper notes such correctors
	// cost raw throughput — here 75% — which D-RaNGe itself does not need.
	conditioned, err := drange.Open(ctx, profile,
		drange.WithPostprocess(drange.SHA256Conditioner(1024)))
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	defer conditioned.Close()
	sealed := make([]byte, 32)
	if _, err := conditioned.Read(sealed); err != nil {
		log.Fatalf("keygen: %v", err)
	}
	fmt.Printf("SHA-256-conditioned key:              %s\n", hex.EncodeToString(sealed))

	// Sanity-check a longer stream with the NIST suite's quick tests.
	results, err := src.(*drange.Generator).RunNIST(40000, 0)
	if err != nil {
		log.Fatalf("keygen: %v", err)
	}
	for _, r := range results {
		if r.Name == "monobit" || r.Name == "runs" {
			fmt.Printf("NIST %-8s p=%.3f pass=%v\n", r.Name, r.PValue, r.Pass)
		}
	}
}
