// bench_test.go is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (see DESIGN.md for the experiment index
// and EXPERIMENTS.md for paper-versus-measured values). The benchmarks run
// against a reduced-size simulated device population so the whole harness
// completes in minutes; cmd/drange-figures runs the same experiments at
// larger scale and prints the full data series.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/drange"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/entropy"
	"repro/internal/memctrl"
	"repro/internal/nist"
	"repro/internal/pattern"
	"repro/internal/postproc"
	"repro/internal/power"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchGeometry is a reduced device: every structural feature of the model
// is present (banks, subarrays, words) but small enough to characterize in
// seconds.
func benchGeometry() dram.Geometry {
	return dram.Geometry{
		Banks:        8,
		RowsPerBank:  256,
		ColsPerRow:   4096,
		SubarrayRows: 128,
		WordBits:     256,
	}
}

func benchProfile(m dram.Manufacturer) dram.Profile {
	p := dram.MustProfile(m)
	p.WeakColumnDensity = 1.0 / 24.0
	p.SubarrayRows = 128
	return p
}

func benchDevice(b *testing.B, serial uint64, m dram.Manufacturer) *dram.Device {
	b.Helper()
	prof := benchProfile(m)
	dev, err := dram.NewDevice(dram.Config{
		Serial:   serial,
		Profile:  &prof,
		Geometry: benchGeometry(),
		Noise:    dram.NewDeterministicNoise(serial),
	})
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func benchIdentifyConfig() core.IdentifyConfig {
	cfg := core.DefaultIdentifyConfig("A")
	cfg.ScreenIterations = 30
	cfg.Samples = 300
	cfg.Tolerance = 0.4
	cfg.MaxBiasDelta = 0.03
	return cfg
}

// benchState is the shared, lazily-built characterization of one device:
// identified RNG cells and per-bank word selections, reused by the
// throughput/latency/energy/NIST benchmarks.
type benchState struct {
	device     *dram.Device
	cells      []core.RNGCell
	selections []core.BankSelection
}

var (
	benchOnce  sync.Once
	benchSetup *benchState
	benchErr   error
)

func sharedState(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		dev := benchDevice(b, 0xD0A11CE5, dram.ManufacturerA)
		ctrl := memctrl.NewController(dev)
		st := &benchState{device: dev}
		for bank := 0; bank < dev.Geometry().Banks; bank++ {
			region := profiler.Region{Bank: bank, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
			cells, err := core.IdentifyRNGCells(ctrl, region, benchIdentifyConfig())
			if err != nil {
				benchErr = err
				return
			}
			st.cells = append(st.cells, cells...)
		}
		sels, err := core.SelectBankWords(st.cells)
		if err != nil {
			benchErr = err
			return
		}
		st.selections = sels
		benchSetup = st
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// BenchmarkFigure4SpatialDistribution regenerates the Figure 4 experiment:
// the spatial distribution of activation failures over a cell-array window,
// reporting how concentrated failures are in weak columns.
func BenchmarkFigure4SpatialDistribution(b *testing.B) {
	dev := benchDevice(b, 41, dram.ManufacturerA)
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 8, Pattern: pattern.Solid0()}
	var failingCols, failedCells int
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(dev)
		m, err := profiler.SpatialDistribution(ctrl, 0, 128, 1024, cfg)
		if err != nil {
			b.Fatal(err)
		}
		failingCols = len(m.FailingColumns())
		failedCells = 0
		for _, n := range m.FailuresPerRow {
			failedCells += n
		}
	}
	b.ReportMetric(float64(failingCols), "failing-columns")
	b.ReportMetric(float64(failedCells), "failing-cells")
}

// BenchmarkFigure5DataPatternDependence regenerates the Figure 5 experiment:
// per-data-pattern coverage of failure-prone cells. A representative subset
// of the 40 patterns keeps the benchmark short; cmd/drange-figures runs all
// of them.
func BenchmarkFigure5DataPatternDependence(b *testing.B) {
	dev := benchDevice(b, 51, dram.ManufacturerA)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 8}
	pats := []pattern.Pattern{
		pattern.Solid0(), pattern.Solid1(), pattern.Checkered0(), pattern.Checkered1(),
		pattern.Walking0(0), pattern.Walking1(0),
	}
	var bestCoverage float64
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(dev)
		cov, err := profiler.DataPatternDependence(ctrl, region, pats, cfg)
		if err != nil {
			b.Fatal(err)
		}
		best, err := profiler.BestPatternByMidProbCells(cov)
		if err != nil {
			b.Fatal(err)
		}
		bestCoverage = best.Coverage
	}
	b.ReportMetric(bestCoverage, "best-pattern-coverage")
}

// BenchmarkFigure6TemperatureEffect regenerates the Figure 6 experiment: how
// per-cell failure probability changes when the DRAM temperature rises by
// 5 °C.
func BenchmarkFigure6TemperatureEffect(b *testing.B) {
	dev := benchDevice(b, 61, dram.ManufacturerA)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 64, WordStart: 0, WordCount: 8}
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 15, Pattern: pattern.Solid0()}
	var increased, decreased float64
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(dev)
		res, err := profiler.TemperatureSweep(ctrl, region, cfg, 55, 5)
		if err != nil {
			b.Fatal(err)
		}
		increased, decreased = res.IncreasedFraction, res.DecreasedFraction
	}
	b.ReportMetric(increased, "fprob-increased-fraction")
	b.ReportMetric(decreased, "fprob-decreased-fraction")
}

// BenchmarkEntropyOverTime regenerates the Section 5.4 experiment: stability
// of per-cell failure probability across repeated profiling rounds.
func BenchmarkEntropyOverTime(b *testing.B) {
	dev := benchDevice(b, 54, dram.ManufacturerA)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 48, WordStart: 0, WordCount: 6}
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 20, Pattern: pattern.Solid0()}
	var worstDrift float64
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(dev)
		res, err := profiler.TimeStability(ctrl, region, cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		worstDrift = res.WorstDrift
	}
	b.ReportMetric(worstDrift, "worst-fprob-drift")
}

// BenchmarkTable1NIST regenerates (at reduced scale) the Table 1 experiment:
// bitstreams sampled from identified RNG cells evaluated with the NIST
// suite. The full 236×1 Mb evaluation is available via cmd/drange-figures.
func BenchmarkTable1NIST(b *testing.B) {
	st := sharedState(b)
	if len(st.cells) == 0 {
		b.Fatal("no RNG cells identified")
	}
	// Table 1 samples identified RNG cells; take the cell whose measured
	// failure probability is closest to one half, as a deployment would.
	cell := st.cells[0]
	for _, c := range st.cells {
		if abs(c.Fprob-0.5) < abs(cell.Fprob-0.5) {
			cell = c
		}
	}
	var passed, applicable int
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(st.device)
		stream, err := core.SampleCell(ctrl, cell, pattern.Solid0(), 10.0, 60000)
		if err != nil {
			b.Fatal(err)
		}
		res, err := nist.RunAll(stream, nist.DefaultAlpha)
		if err != nil {
			b.Fatal(err)
		}
		passed, applicable = res.Passed()
		if passed != applicable {
			for _, r := range res.Results {
				if r.Applicable && !r.Pass {
					b.Fatalf("NIST test %s failed on RNG-cell output (p=%v)", r.Name, r.PValue)
				}
			}
		}
	}
	b.ReportMetric(float64(passed), "nist-tests-passed")
	b.ReportMetric(float64(applicable), "nist-tests-applicable")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkFigure7RNGCellDensity regenerates the Figure 7 experiment: the
// distribution of RNG cells per DRAM word across banks.
func BenchmarkFigure7RNGCellDensity(b *testing.B) {
	st := sharedState(b)
	var maxPerWord, totalCells int
	for i := 0; i < b.N; i++ {
		hists := core.RNGCellDensity(st.cells)
		maxPerWord, totalCells = 0, 0
		for _, h := range hists {
			if h.MaxCellsPerWord > maxPerWord {
				maxPerWord = h.MaxCellsPerWord
			}
			totalCells += h.TotalRNGCells
		}
	}
	b.ReportMetric(float64(maxPerWord), "max-rng-cells-per-word")
	b.ReportMetric(float64(totalCells), "rng-cells-total")
}

// BenchmarkFigure8Throughput regenerates the Figure 8 experiment: TRNG
// throughput as a function of the number of banks used, plus the 4-channel
// aggregate the paper headlines.
func BenchmarkFigure8Throughput(b *testing.B) {
	st := sharedState(b)
	for _, banks := range []int{1, 2, 4, 8} {
		if banks > len(st.selections) {
			continue
		}
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				ctrl := memctrl.NewController(st.device)
				res, err := core.ThroughputEstimate(ctrl, st.selections, 10.0, banks, 200)
				if err != nil {
					b.Fatal(err)
				}
				mbps = res.ThroughputMbps
			}
			fourChannel, err := core.MultiChannelThroughputMbps(mbps, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(mbps, "Mb/s/channel")
			b.ReportMetric(fourChannel, "Mb/s/4-channels")
		})
	}
}

// BenchmarkLatency64 regenerates the Section 7.3 latency analysis: the time
// to produce a 64-bit random value with one bank versus all banks.
func BenchmarkLatency64(b *testing.B) {
	st := sharedState(b)
	for _, banks := range []int{1, len(st.selections)} {
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			var ns float64
			for i := 0; i < b.N; i++ {
				ctrl := memctrl.NewController(st.device)
				lat, err := core.LatencyEstimate(ctrl, st.selections, 10.0, banks, 64)
				if err != nil {
					b.Fatal(err)
				}
				ns = lat
			}
			b.ReportMetric(ns, "ns/64-bits")
		})
	}
}

// BenchmarkEnergyPerBit regenerates the Section 7.3 energy analysis using
// the DRAMPower-style model over the Algorithm 2 command trace.
func BenchmarkEnergyPerBit(b *testing.B) {
	st := sharedState(b)
	var nj float64
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(st.device, memctrl.WithTrace())
		e, err := core.EnergyEstimate(ctrl, st.selections, 10.0, len(st.selections), 200, power.NewLPDDR4Model())
		if err != nil {
			b.Fatal(err)
		}
		nj = e
	}
	b.ReportMetric(nj, "nJ/bit")
}

// BenchmarkIdleBandwidthThroughput regenerates the Section 7.3 interference
// study: the TRNG throughput achievable using only DRAM bandwidth left idle
// by co-running workloads.
func BenchmarkIdleBandwidthThroughput(b *testing.B) {
	st := sharedState(b)
	geom := st.device.Geometry()
	ctrl := memctrl.NewController(st.device)
	standalone, err := core.ThroughputEstimate(ctrl, st.selections, 10.0, len(st.selections), 200)
	if err != nil {
		b.Fatal(err)
	}
	var avg, min, max float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		min, max = 1e18, 0
		profiles := workload.Profiles()
		for _, p := range profiles {
			reqs, err := workload.Generate(p, workload.Config{
				Banks: geom.Banks, RowsPerBank: geom.RowsPerBank, WordsPerRow: geom.WordsPerRow(),
				DurationNS: 100000, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := sim.ReplayWorkload(memctrl.NewController(st.device), reqs)
			if err != nil {
				b.Fatal(err)
			}
			tput, err := sim.IdleBandwidthThroughputMbps(standalone.ThroughputMbps, rep.IdleFraction)
			if err != nil {
				b.Fatal(err)
			}
			sum += tput
			if tput < min {
				min = tput
			}
			if tput > max {
				max = tput
			}
		}
		avg = sum / float64(len(profiles))
	}
	b.ReportMetric(avg, "Mb/s-avg")
	b.ReportMetric(min, "Mb/s-min")
	b.ReportMetric(max, "Mb/s-max")
}

// BenchmarkTable2Comparison regenerates Table 2: D-RaNGe versus the prior
// DRAM-based TRNG designs, reporting the throughput advantage over the best
// prior proposal.
func BenchmarkTable2Comparison(b *testing.B) {
	st := sharedState(b)
	ctrlT := memctrl.NewController(st.device, memctrl.WithTrace())
	energy, err := core.EnergyEstimate(ctrlT, st.selections, 10.0, len(st.selections), 200, power.NewLPDDR4Model())
	if err != nil {
		b.Fatal(err)
	}
	ctrlL := memctrl.NewController(st.device)
	latency, err := core.LatencyEstimate(ctrlL, st.selections, 10.0, len(st.selections), 64)
	if err != nil {
		b.Fatal(err)
	}
	ctrlP := memctrl.NewController(st.device)
	perChannel, err := core.ThroughputEstimate(ctrlP, st.selections, 10.0, len(st.selections), 200)
	if err != nil {
		b.Fatal(err)
	}
	peak, err := core.MultiChannelThroughputMbps(perChannel.ThroughputMbps, 4)
	if err != nil {
		b.Fatal(err)
	}
	var advantage float64
	for i := 0; i < b.N; i++ {
		rows, err := baselines.Table2(st.device.Timing(), power.NewLPDDR4Model(), baselines.DRangeRow(latency, energy, peak))
		if err != nil {
			b.Fatal(err)
		}
		bestPrior := 0.0
		for _, r := range rows[:len(rows)-1] {
			if r.PeakThroughputMbps > bestPrior {
				bestPrior = r.PeakThroughputMbps
			}
		}
		advantage = peak / bestPrior
	}
	b.ReportMetric(peak, "drange-peak-Mb/s")
	b.ReportMetric(advantage, "speedup-vs-best-prior")
}

// BenchmarkAblationTRCDSweep regenerates the tRCD ablation: activation
// failure yield as the activation latency sweeps across the 6–18 ns range.
func BenchmarkAblationTRCDSweep(b *testing.B) {
	dev := benchDevice(b, 12, dram.ManufacturerA)
	region := profiler.Region{Bank: 0, RowStart: 0, RowCount: 48, WordStart: 0, WordCount: 6}
	cfg := profiler.Config{TRCDNS: 10.0, Iterations: 10, Pattern: pattern.Solid0()}
	var atSix, atEighteen int
	for i := 0; i < b.N; i++ {
		ctrl := memctrl.NewController(dev)
		points, err := profiler.TRCDSweep(ctrl, region, cfg, []float64{6, 10, 13, 18})
		if err != nil {
			b.Fatal(err)
		}
		atSix = points[0].FailingCells
		atEighteen = points[len(points)-1].FailingCells
	}
	b.ReportMetric(float64(atSix), "failing-cells@6ns")
	b.ReportMetric(float64(atEighteen), "failing-cells@18ns")
}

// BenchmarkAblationPostprocessing quantifies the throughput cost of
// post-processing (Section 2.2): D-RaNGe does not need it, but applying it
// anyway shows the up-to-80% loss the paper cites.
func BenchmarkAblationPostprocessing(b *testing.B) {
	st := sharedState(b)
	ctrl := memctrl.NewController(st.device)
	trng, err := core.NewTRNG(ctrl, st.selections, core.DefaultTRNGConfig("A"))
	if err != nil {
		b.Fatal(err)
	}
	raw, err := trng.ReadBits(40000)
	if err != nil {
		b.Fatal(err)
	}
	var vnCost float64
	for i := 0; i < b.N; i++ {
		cost, err := postproc.ThroughputCost(postproc.VonNeumann{}, raw)
		if err != nil {
			b.Fatal(err)
		}
		vnCost = cost
	}
	bias, err := entropy.Bias(raw)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(vnCost, "von-neumann-throughput-cost")
	b.ReportMetric(bias, "raw-output-bias")
}

// BenchmarkEngineShardScaling measures the sharded harvesting engine's
// aggregate throughput in simulated DRAM time as the shard count grows. Each
// shard is an independent channel/rank controller over a disjoint subset of
// the selected banks, so the aggregate rate reproduces the paper's claim
// that D-RaNGe throughput scales with the number of banks and channels
// sampled in parallel: at 4 shards the engine sustains well over twice the
// single-shard TRNG rate (the enforced regression lives in
// internal/core/engine_test.go).
func BenchmarkEngineShardScaling(b *testing.B) {
	st := sharedState(b)
	for _, shards := range []int{1, 2, 4} {
		if shards > len(st.selections) {
			continue
		}
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var mbps, lat float64
			for i := 0; i < b.N; i++ {
				eng, err := core.NewEngine(context.Background(), st.device, st.selections,
					core.EngineConfig{Shards: shards, TRNG: core.DefaultTRNGConfig("A")})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.ReadBits(4096 * eng.Shards()); err != nil {
					eng.Close()
					b.Fatal(err)
				}
				s := eng.Stats()
				eng.Close()
				mbps, lat = s.AggregateThroughputMbps, s.Latency64NS
			}
			b.ReportMetric(mbps, "simulated-Mb/s")
			b.ReportMetric(lat, "ns/64-bits")
		})
	}
}

// BenchmarkEngineReadThroughput measures the simulator-host throughput of
// the engine's thread-safe Read path (bytes per wall-clock second on the
// simulation host), the sharded counterpart of BenchmarkTRNGReadThroughput.
func BenchmarkEngineReadThroughput(b *testing.B) {
	st := sharedState(b)
	eng, err := core.NewEngine(context.Background(), st.device, st.selections,
		core.EngineConfig{Shards: 4, TRNG: core.DefaultTRNGConfig("A")})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolProfiles lazily characterizes the small deterministic device
// fleet BenchmarkPoolScaling multiplexes.
var (
	benchPoolOnce sync.Once
	benchPoolProf []*drange.Profile
	benchPoolErr  error
)

func poolProfiles(b *testing.B, n int) []*drange.Profile {
	b.Helper()
	benchPoolOnce.Do(func() {
		for serial := uint64(201); serial < 201+4; serial++ {
			p, err := drange.Characterize(context.Background(),
				drange.WithManufacturer("A"),
				drange.WithSerial(serial),
				drange.WithDeterministic(true),
				drange.WithGeometry(drange.Geometry{
					Banks: 8, RowsPerBank: 256, ColsPerRow: 4096, SubarrayRows: 128, WordBits: 256,
				}),
				drange.WithProfilingRegion(48, 8, 8),
				drange.WithSamples(300),
				drange.WithTolerance(0.4),
				drange.WithMaxBiasDelta(0.03),
				drange.WithScreenIterations(25),
			)
			if err != nil {
				benchPoolErr = err
				return
			}
			benchPoolProf = append(benchPoolProf, p)
		}
	})
	if benchPoolErr != nil {
		b.Fatal(benchPoolErr)
	}
	return benchPoolProf[:n]
}

// BenchmarkPoolScaling measures the multi-device Pool's aggregate throughput
// in simulated DRAM time as the device count grows. Each device is an
// independent channel hierarchy with its own sharded engine, so the
// aggregate rate is the sum of the member rates — the fleet-scale extension
// of the paper's multi-channel scaling (a 4-device pool sustains >= 3x the
// single-device rate; the enforced regression lives in
// drange/pool_test.go). bytes/sec reports the wall-clock simulation-host
// rate.
func BenchmarkPoolScaling(b *testing.B) {
	for _, devices := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			profiles := poolProfiles(b, devices)
			buf := make([]byte, 4096)
			var mbps, lat float64
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool, err := drange.OpenPool(context.Background(), profiles)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := pool.Read(buf); err != nil {
					pool.Close()
					b.Fatal(err)
				}
				st := pool.Stats()
				pool.Close()
				mbps, lat = st.AggregateThroughputMbps, st.Latency64NS
			}
			b.ReportMetric(mbps, "simulated-Mb/s")
			b.ReportMetric(lat, "ns/64-bits")
		})
	}
}

// benchSource opens a Source over the first characterized pool profile with
// the given extra options, shared by the serving-path benchmarks below.
func benchSource(b *testing.B, opts ...drange.Option) drange.Source {
	b.Helper()
	profile := poolProfiles(b, 1)[0]
	src, err := drange.Open(context.Background(), profile, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { src.Close() })
	return src
}

// BenchmarkSourceRead measures the steady-state serving path of a Source with
// no health monitor and no post-processing chain — the configuration the
// packed-word fast path serves. bytes/sec is the wall-clock simulation-host
// rate; the allocation counters are the acceptance metric for the
// allocation-free data path (BENCH_pr5.json records the trajectory).
func BenchmarkSourceRead(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"sequential", 0}, {"shards=4", 4}} {
		b.Run(cfg.name, func(b *testing.B) {
			src := benchSource(b, drange.WithShards(cfg.shards))
			buf := make([]byte, 1024)
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Read(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSourceRead8Readers drives a sharded Source from 8 concurrent
// readers: the serving path must scale with demand instead of serializing
// behind the facade mutex.
func BenchmarkSourceRead8Readers(b *testing.B) {
	src := benchSource(b, drange.WithShards(4))
	b.SetBytes(1024)
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 1024)
		for pb.Next() {
			if _, err := src.Read(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolRead measures the multi-device Pool serving path (4 devices,
// device health tracking at its defaults).
func BenchmarkPoolRead(b *testing.B) {
	profiles := poolProfiles(b, 4)
	pool, err := drange.OpenPool(context.Background(), profiles)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolRead8Readers drives a 4-device pool from 8 concurrent readers:
// the acceptance check that concurrent pool reads scale instead of
// serializing behind the pool mutex.
func BenchmarkPoolRead8Readers(b *testing.B) {
	profiles := poolProfiles(b, 4)
	pool, err := drange.OpenPool(context.Background(), profiles)
	if err != nil {
		b.Fatal(err)
	}
	defer pool.Close()
	b.SetBytes(1024)
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 1024)
		for pb.Next() {
			if _, err := pool.Read(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMonitoredRead measures the serving path with the SP 800-90B online
// health tests ingesting every harvested bit.
func BenchmarkMonitoredRead(b *testing.B) {
	src := benchSource(b, drange.WithShards(4),
		drange.WithHealthTests(drange.HealthTestPolicy{StartupBits: -1}))
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDRBGRead measures the two-tier serving split introduced by
// WithDRBG: "drbg" is Source.Read serving ChaCha20 DRBG output reseeded from
// the screened raw harvest every 1024 requests, "drbg-ctr" the CTR_DRBG
// construction, and "raw" the same Source's ReadRaw physical tier. The
// acceptance metrics are the drbg/raw throughput ratio (the DRBG tier must
// serve at crypto speed, orders of magnitude above the simulated harvest
// rate) and 0 steady-state allocs/op on the ChaCha tier.
func BenchmarkDRBGRead(b *testing.B) {
	run := func(b *testing.B, src drange.Source, read func([]byte) (int, error)) {
		buf := make([]byte, 1024)
		// Warm up past instantiation so reseed cadence, not open-time setup,
		// is what the steady state measures.
		if _, err := read(buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := read(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("drbg", func(b *testing.B) {
		src := benchSource(b, drange.WithShards(4), drange.WithDRBG(drange.DRBGPolicy{}))
		run(b, src, src.Read)
	})
	b.Run("drbg-ctr", func(b *testing.B) {
		src := benchSource(b, drange.WithShards(4),
			drange.WithDRBG(drange.DRBGPolicy{Algorithm: drange.DRBGCTRAES256}))
		run(b, src, src.Read)
	})
	b.Run("raw", func(b *testing.B) {
		src := benchSource(b, drange.WithShards(4), drange.WithDRBG(drange.DRBGPolicy{}))
		run(b, src, src.ReadRaw)
	})
}

// BenchmarkPostprocessedRead measures the serving path through a von Neumann
// corrector chain (Section 2.2), the heaviest-discarding built-in stage.
func BenchmarkPostprocessedRead(b *testing.B) {
	src := benchSource(b, drange.WithShards(4), drange.WithPostprocess(drange.VonNeumann()))
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTRNGReadThroughput measures the simulator-host throughput of the
// generator's Read path (bytes of random data per wall-clock second on the
// simulation host — not the DRAM-timing throughput of Figure 8).
func BenchmarkTRNGReadThroughput(b *testing.B) {
	st := sharedState(b)
	ctrl := memctrl.NewController(st.device)
	trng, err := core.NewTRNG(ctrl, st.selections, core.DefaultTRNGConfig("A"))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trng.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
}
